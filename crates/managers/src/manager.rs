//! The segment-manager interface.
//!
//! A *segment manager* is the process-level module responsible for the
//! pages of one or more segments (§2.2): it handles page faults, reclaims
//! pages into its free-page segment, and negotiates with the system page
//! cache manager for its share of physical memory. The kernel knows
//! managers only by [`ManagerId`]; this crate gives them behaviour.

use std::fmt;

use epcm_core::fault::FaultEvent;
use epcm_core::kernel::Kernel;
use epcm_core::types::{ManagerId, SegmentId};
use epcm_sim::disk::FileStore;

use crate::spcm::{SpcmError, SystemPageCacheManager};

/// Where a manager executes, which determines fault-dispatch cost
/// (Table 1's two V++ rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagerMode {
    /// The manager module runs as a procedure of the faulting process on a
    /// pinned signal stack: no context switch, and on R3000-class hardware
    /// the application resumes directly from the handler (107 µs minimal
    /// fault).
    FaultingProcess,
    /// The manager runs as a separate server process: the kernel suspends
    /// the faulting process and communicates by IPC (379 µs minimal fault).
    /// The default segment manager runs this way.
    Server,
}

impl fmt::Display for ManagerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerMode::FaultingProcess => write!(f, "faulting-process"),
            ManagerMode::Server => write!(f, "server"),
        }
    }
}

/// The world a manager operates in: the kernel it calls back into, the
/// backing store it fetches and writes pages against, and the system page
/// cache manager it negotiates frames with.
///
/// The fields are disjoint borrows so a manager can, e.g., ask the SPCM
/// for frames (`env.spcm`) which itself migrates them through
/// `env.kernel`.
#[derive(Debug)]
pub struct Env<'a> {
    /// The V++ kernel.
    pub kernel: &'a mut Kernel,
    /// Backing storage (files, swap).
    pub store: &'a mut FileStore,
    /// The global frame allocator.
    pub spcm: &'a mut SystemPageCacheManager,
}

/// Errors a manager can report while servicing an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerError {
    /// A kernel operation failed — a manager bug or stale state.
    Kernel(epcm_core::KernelError),
    /// The SPCM would not provide frames and the manager found nothing to
    /// reclaim: genuinely out of memory.
    OutOfFrames {
        /// The manager that starved.
        manager: ManagerId,
    },
    /// The fault names a segment this manager does not manage.
    NotManaged {
        /// The unexpected segment.
        segment: SegmentId,
    },
    /// Backing-store failure.
    Store(epcm_sim::disk::FileStoreError),
    /// SPCM interaction failed.
    Spcm(SpcmError),
    /// The faulting access violates protection the manager will not
    /// lift (e.g. a write through a read-only bound region) — the
    /// application would receive a signal.
    ProtectionDenied {
        /// Segment of the denied access.
        segment: SegmentId,
        /// Page of the denied access.
        page: epcm_core::PageNumber,
    },
    /// Pinning beyond the manager's quota (the related-work limitation:
    /// "the operating system cannot allow a significant percentage of its
    /// page frame pool to be pinned").
    PinQuotaExceeded {
        /// The quota in pages.
        limit: u64,
    },
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Kernel(e) => write!(f, "kernel: {e}"),
            ManagerError::OutOfFrames { manager } => {
                write!(f, "{manager} has no free frames and nothing reclaimable")
            }
            ManagerError::NotManaged { segment } => {
                write!(f, "fault for unmanaged segment {segment}")
            }
            ManagerError::Store(e) => write!(f, "store: {e}"),
            ManagerError::Spcm(e) => write!(f, "spcm: {e}"),
            ManagerError::PinQuotaExceeded { limit } => {
                write!(f, "pin quota of {limit} pages exceeded")
            }
            ManagerError::ProtectionDenied { segment, page } => {
                write!(f, "access denied by protection on {page} of {segment}")
            }
        }
    }
}

impl std::error::Error for ManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagerError::Kernel(e) => Some(e),
            ManagerError::Store(e) => Some(e),
            ManagerError::Spcm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<epcm_core::KernelError> for ManagerError {
    fn from(e: epcm_core::KernelError) -> Self {
        ManagerError::Kernel(e)
    }
}

impl From<epcm_sim::disk::FileStoreError> for ManagerError {
    fn from(e: epcm_sim::disk::FileStoreError) -> Self {
        ManagerError::Store(e)
    }
}

impl From<SpcmError> for ManagerError {
    fn from(e: SpcmError) -> Self {
        ManagerError::Spcm(e)
    }
}

/// A process-level page-cache manager.
///
/// Implementations receive faults from the [`Machine`](crate::Machine)
/// dispatch loop and repair them by re-entering the kernel (allocating
/// frames, migrating pages, fetching data). The kernel itself never calls
/// a manager.
pub trait SegmentManager: fmt::Debug {
    /// The id this manager was registered under.
    fn id(&self) -> ManagerId;

    /// Type-erased self, so callers holding a `dyn SegmentManager` can
    /// downcast to a concrete manager for its statistics or
    /// manager-specific operations.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable type-erased self (for manager-specific commands like
    /// pinning or marking pages discardable).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Called once by the machine at registration to fix the id.
    fn set_id(&mut self, id: ManagerId);

    /// Execution mode (affects dispatch cost).
    fn mode(&self) -> ManagerMode {
        ManagerMode::Server
    }

    /// Takes over management of `segment`: record its backing store,
    /// register with the kernel, seed policy state. Called by
    /// [`Machine::create_segment`](crate::Machine::create_segment) and by
    /// applications handing an existing segment to a new manager (the
    /// §2.2 ownership-assumption protocol).
    ///
    /// # Errors
    ///
    /// Implementations report [`ManagerError`] for kernel failures.
    fn attach(&mut self, env: &mut Env<'_>, segment: SegmentId) -> Result<(), ManagerError> {
        let _ = (env, segment);
        Ok(())
    }

    /// Handles one fault. On return the faulting access is retried; if it
    /// faults identically again the machine reports a livelock.
    ///
    /// # Errors
    ///
    /// Implementations report [`ManagerError`] when the fault cannot be
    /// repaired (out of frames, unmanaged segment, backing-store failure).
    fn handle_fault(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError>;

    /// Asked (by the machine, usually on behalf of the SPCM) to give back
    /// `count` frames. Returns how many were actually returned.
    ///
    /// # Errors
    ///
    /// Implementations report [`ManagerError`] for kernel or store
    /// failures encountered while writing back and migrating pages.
    fn reclaim(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError>;

    /// Notification that `segment` is being closed: write back what must
    /// survive and return its frames.
    ///
    /// # Errors
    ///
    /// As for [`SegmentManager::reclaim`].
    fn segment_closed(&mut self, env: &mut Env<'_>, segment: SegmentId)
        -> Result<(), ManagerError>;

    /// Housekeeping opportunity (reference-bit sampling, free-pool refill,
    /// market budgeting). Called by [`Machine::tick`](crate::Machine::tick).
    ///
    /// # Errors
    ///
    /// As for [`SegmentManager::reclaim`].
    fn tick(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        let _ = env;
        Ok(())
    }

    /// Number of free frames currently held in the manager's free-page
    /// segment(s) (0 for managers without one).
    fn free_frames(&self, kernel: &Kernel) -> u64 {
        let _ = kernel;
        0
    }

    /// Installs a shared event tracer; managers that emit trace events
    /// (reclaims, batched swaps) record into it. Default: ignore — most
    /// managers' activity is already visible through the kernel's events.
    fn set_tracer(&mut self, tracer: epcm_trace::SharedTracer) {
        let _ = tracer;
    }

    /// Exports this manager's counters into the unified metrics registry
    /// under `manager.<id>.*` names. Default: nothing to export.
    fn export_metrics(&self, metrics: &mut epcm_trace::MetricsRegistry) {
        let _ = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(ManagerMode::FaultingProcess.to_string(), "faulting-process");
        assert_eq!(ManagerMode::Server.to_string(), "server");
    }

    #[test]
    fn error_display_and_sources() {
        use std::error::Error;
        let e = ManagerError::OutOfFrames {
            manager: ManagerId(3),
        };
        assert!(e.to_string().contains("mgr#3"));
        assert!(e.source().is_none());

        let k: ManagerError = epcm_core::KernelError::UnknownSegment(
            // SegmentId has a crate-private field; round-trip through the
            // kernel API instead.
            {
                let kernel = Kernel::new(1);
                kernel.frame_pool()
            },
        )
        .into();
        assert!(k.to_string().contains("kernel"));
        assert!(k.source().is_some());
    }
}
