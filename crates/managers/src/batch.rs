//! Batch-program scheduling under the memory market (§2.4).
//!
//! "For batch programs the application segment manager suspends and swaps
//! the program until it has saved enough drams to afford enough memory
//! for a reasonable time slice of execution. By queries to the SPCM, it
//! can determine the demand on memory ... When the process has enough
//! drams to afford the memory, it requests the memory from the SPCM and
//! runs as soon as the memory request is granted. At the end of its time
//! slice, when its dram savings are running low, it pages out the data
//! and returns to a quiescent state in which it has a very low memory
//! requirement."
//!
//! [`BatchJob`] implements exactly that driver around a
//! [`GenericManager`](crate::generic::GenericManager): query
//! affordability, fault the working set in, run
//! the slice, then swap everything out (write-back through the manager)
//! and return the frames to the SPCM.

use epcm_core::types::{AccessKind, ManagerId, SegmentId};
use epcm_sim::clock::{Micros, Timestamp};

use crate::machine::{Machine, MachineError};

/// Lifecycle state of a batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchState {
    /// Quiescent: swapped out, saving drams.
    Saving,
    /// Resident and executing its timeslice.
    Running {
        /// When the current slice started.
        since: Timestamp,
    },
}

/// Progress counters for a batch job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Completed timeslices.
    pub timeslices: u64,
    /// Swap-out events.
    pub swap_outs: u64,
    /// Total virtual time spent resident.
    pub resident_time: Micros,
}

/// A batch program driven by the market: swapped out while saving,
/// resident while it can pay.
#[derive(Debug)]
pub struct BatchJob {
    manager: ManagerId,
    segment: SegmentId,
    working_set: u64,
    timeslice: Micros,
    state: BatchState,
    stats: BatchStats,
    next_page: u64,
}

impl BatchJob {
    /// Creates a job that needs `working_set` resident pages of `segment`
    /// (managed by `manager`, with a market account open) and runs in
    /// slices of `timeslice`.
    pub fn new(
        manager: ManagerId,
        segment: SegmentId,
        working_set: u64,
        timeslice: Micros,
    ) -> Self {
        BatchJob {
            manager,
            segment,
            working_set,
            timeslice,
            state: BatchState::Saving,
            stats: BatchStats::default(),
            next_page: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BatchState {
        self.state
    }

    /// Progress counters.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Advances the job's lifecycle at the current virtual time. Call
    /// once per scheduling period (after `machine.tick()`).
    ///
    /// While saving: queries the market; once the working set is
    /// affordable for a full timeslice, faults the working set in (the
    /// manager requests the frames from the SPCM) and starts running.
    /// While running: touches its data; at the end of the slice, swaps
    /// out through the manager and returns to saving.
    ///
    /// # Errors
    ///
    /// Machine/manager failures. An `OutOfFrames` refusal while trying to
    /// come resident is treated as "keep saving", not an error.
    pub fn poll(&mut self, machine: &mut Machine) -> Result<BatchState, MachineError> {
        match self.state {
            BatchState::Saving => {
                let affordable = machine
                    .spcm()
                    .market()
                    .map(|mk| {
                        mk.time_until_affordable(self.manager, self.working_set, self.timeslice)
                            == Some(Micros::ZERO)
                    })
                    .unwrap_or(true);
                if !affordable {
                    return Ok(self.state);
                }
                // Fault the working set in; if memory is genuinely short,
                // stay quiescent and retry next period.
                for p in 0..self.working_set {
                    match machine.touch(self.segment, p, AccessKind::Write) {
                        Ok(()) => {}
                        Err(MachineError::Manager { .. }) => return Ok(self.state),
                        Err(e) => return Err(e),
                    }
                }
                self.state = BatchState::Running {
                    since: machine.now(),
                };
                Ok(self.state)
            }
            BatchState::Running { since } => {
                // Do a sweep of work over the working set.
                for _ in 0..self.working_set.min(16) {
                    let p = self.next_page % self.working_set;
                    self.next_page += 1;
                    machine.touch(self.segment, p, AccessKind::Write)?;
                }
                let ran = machine.now().duration_since(since);
                // "At the end of its time slice, when its dram savings
                // are running low, it pages out the data and returns to a
                // quiescent state": leave at the slice boundary, or early
                // if the account can no longer pay for even one more
                // second of residency.
                let broke = machine
                    .spcm()
                    .market()
                    .map(|mk| !mk.can_afford(self.manager, self.working_set, Micros::from_secs(1)))
                    .unwrap_or(false);
                if ran >= self.timeslice || broke {
                    self.swap_out(machine)?;
                    self.stats.timeslices += 1;
                    self.stats.resident_time += ran;
                    self.state = BatchState::Saving;
                }
                Ok(self.state)
            }
        }
    }

    /// Swaps the job out: the manager writes back and returns every frame
    /// it holds to the SPCM.
    ///
    /// # Errors
    ///
    /// Machine/manager failures.
    pub fn swap_out(&mut self, machine: &mut Machine) -> Result<(), MachineError> {
        let held = machine.spcm().granted_to(self.manager);
        if held > 0 {
            let id = self.manager;
            machine.with_manager(id, |mgr, env| mgr.reclaim(env, held).map(|_| ()))?;
        }
        self.stats.swap_outs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{GenericManager, PlainSpec};
    use crate::market::{MarketConfig, MemoryMarket};
    use crate::spcm::AllocationPolicy;
    use crate::ManagerMode;
    use epcm_core::types::{SegmentKind, UserId};

    fn market_machine(frames: usize, incomes: &[f64]) -> (Machine, Vec<ManagerId>, Vec<SegmentId>) {
        market_machine_with(frames, incomes, false)
    }

    fn market_machine_with(
        frames: usize,
        incomes: &[f64],
        batched: bool,
    ) -> (Machine, Vec<ManagerId>, Vec<SegmentId>) {
        let mut market = MemoryMarket::new(MarketConfig {
            income_per_sec: 0.0,
            charge_per_mb_sec: 10.0,
            free_when_uncontended: false,
            ..MarketConfig::default()
        });
        let mut m = Machine::builder(frames)
            .allocation(AllocationPolicy::Market {
                market: MemoryMarket::new(MarketConfig::default()),
                horizon: Micros::from_secs(2),
            })
            .build();
        // Rebuild the policy with our ledger (accounts opened against the
        // manager ids we are about to register: 1, 2, ...).
        let mut ids = Vec::new();
        let mut segs = Vec::new();
        for (i, &income) in incomes.iter().enumerate() {
            market.open_account(ManagerId(i as u32 + 1), Some(income));
            let mut mgr = GenericManager::new(PlainSpec, ManagerMode::FaultingProcess);
            if batched {
                mgr = mgr.batched_abi(64);
            }
            let id = m.register_manager(Box::new(mgr));
            ids.push(id);
            let seg = m
                .create_segment_with(SegmentKind::Anonymous, 512, id, UserId(i as u32 + 1))
                .unwrap();
            segs.push(seg);
        }
        *m.spcm_mut() = crate::spcm::SystemPageCacheManager::new(
            AllocationPolicy::Market {
                market,
                horizon: Micros::from_secs(2),
            },
            0,
        );
        (m, ids, segs)
    }

    #[test]
    fn jobs_alternate_and_both_progress() {
        // 1.5 MB machine; each job wants 1.25 MB: they cannot both be
        // resident, so the market time-shares them.
        let (mut m, ids, segs) = market_machine(384, &[12.0, 12.0]);
        let mut jobs: Vec<BatchJob> = ids
            .iter()
            .zip(&segs)
            .map(|(&id, &seg)| BatchJob::new(id, seg, 320, Micros::from_secs(4)))
            .collect();
        let mut max_granted = 0u64;
        for _second in 0..400 {
            m.kernel_mut().charge(Micros::from_secs(1));
            m.tick().unwrap();
            for job in &mut jobs {
                job.poll(&mut m).unwrap();
            }
            let granted: u64 = ids.iter().map(|&id| m.spcm().granted_to(id)).sum();
            max_granted = max_granted.max(granted);
        }
        // Both jobs make progress (the market time-shares them via
        // affordability gating, bankruptcy and forced reclamation — not
        // strict mutual exclusion), and the SPCM never over-grants.
        for (i, job) in jobs.iter().enumerate() {
            assert!(
                job.stats().timeslices >= 2,
                "job {i} ran only {} timeslices",
                job.stats().timeslices
            );
            assert!(job.stats().swap_outs >= 2);
        }
        assert!(max_granted <= 384, "over-granted: {max_granted}");
    }

    #[test]
    fn richer_job_runs_more() {
        let (mut m, ids, segs) = market_machine(384, &[6.0, 18.0]);
        let mut jobs: Vec<BatchJob> = ids
            .iter()
            .zip(&segs)
            .map(|(&id, &seg)| BatchJob::new(id, seg, 320, Micros::from_secs(4)))
            .collect();
        for _ in 0..600 {
            m.kernel_mut().charge(Micros::from_secs(1));
            m.tick().unwrap();
            for job in &mut jobs {
                job.poll(&mut m).unwrap();
            }
        }
        let poor = jobs[0].stats();
        let rich = jobs[1].stats();
        assert!(
            rich.resident_time > poor.resident_time,
            "rich {} vs poor {}",
            rich.resident_time,
            poor.resident_time
        );
    }

    #[test]
    fn batched_abi_jobs_match_unbatched() {
        // The batch lifecycle issues only single-op ring batches, which
        // are exactly cost-neutral: the batched run must reproduce the
        // unbatched run's progress and virtual timeline to the microsecond
        // while actually riding the ring.
        let run = |batched: bool| {
            let (mut m, ids, segs) = market_machine_with(384, &[12.0, 12.0], batched);
            let mut jobs: Vec<BatchJob> = ids
                .iter()
                .zip(&segs)
                .map(|(&id, &seg)| BatchJob::new(id, seg, 320, Micros::from_secs(4)))
                .collect();
            for _ in 0..120 {
                m.kernel_mut().charge(Micros::from_secs(1));
                m.tick().unwrap();
                for job in &mut jobs {
                    job.poll(&mut m).unwrap();
                }
            }
            let stats: Vec<BatchStats> = jobs.iter().map(|j| j.stats()).collect();
            (stats, m.now(), m.kernel().stats().ring_ops)
        };
        let (stats_sync, now_sync, ring_sync) = run(false);
        let (stats_ring, now_ring, ring_ring) = run(true);
        assert_eq!(stats_sync, stats_ring);
        assert_eq!(now_sync, now_ring, "single-op batches are cost-neutral");
        assert_eq!(ring_sync, 0);
        assert!(ring_ring > 0, "batched run never touched the ring");
    }

    #[test]
    fn swap_out_returns_every_frame() {
        let (mut m, ids, segs) = market_machine(384, &[50.0]);
        let mut job = BatchJob::new(ids[0], segs[0], 64, Micros::from_secs(1));
        // Save, then come resident.
        for _ in 0..10 {
            m.kernel_mut().charge(Micros::from_secs(1));
            m.tick().unwrap();
            job.poll(&mut m).unwrap();
            if matches!(job.state(), BatchState::Running { .. }) {
                break;
            }
        }
        assert!(matches!(job.state(), BatchState::Running { .. }));
        assert!(m.spcm().granted_to(ids[0]) >= 64);
        job.swap_out(&mut m).unwrap();
        assert_eq!(m.spcm().granted_to(ids[0]), 0);
        assert_eq!(
            m.kernel().resident_pages(segs[0]).unwrap(),
            0,
            "all pages evicted at swap-out"
        );
    }
}
