//! The memory-market economy (§2.4).
//!
//! The SPCM "imposes a charge on a process for the memory that it uses
//! over a given period of time in an artificial monetary unit we call a
//! *dram*": holding `M` megabytes for `T` seconds costs `M * D * T` drams
//! against an income of `I` drams per second. The refinements described in
//! the paper are all implemented: free use when memory is uncontended, a
//! savings tax that stops demand from hoarding against the fixed-price
//! fixed-supply market, an I/O charge that stops scan-structured programs
//! from dodging the memory charge with re-reads, and forced reclamation of
//! bankrupt processes.

use std::collections::BTreeMap;
use std::fmt;

use epcm_core::tier::MemTier;
use epcm_core::types::{ManagerId, BASE_PAGE_SIZE};
use epcm_sim::clock::{Micros, Timestamp};
use epcm_trace::{EventKind, SharedTracer, TraceEvent, TraceSink};

/// Tunable market parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// `D`: drams charged per megabyte-second of memory held.
    pub charge_per_mb_sec: f64,
    /// Default `I`: dram income per second for a new account.
    pub income_per_sec: f64,
    /// Balance above which the savings tax applies.
    pub savings_cap: f64,
    /// Fraction of the above-cap balance taxed away per second.
    pub savings_tax_per_sec: f64,
    /// Drams charged per 4 KB of I/O (the anti-rescan charge).
    pub io_charge_per_block: f64,
    /// When no requests are outstanding, memory is free (the paper's
    /// "continue to use memory at no charge when there are no outstanding
    /// memory requests").
    pub free_when_uncontended: bool,
    /// Per-tier price multipliers applied to `charge_per_mb_sec` on
    /// tiered machines, indexed by [`MemTier::index`]. DRAM at full
    /// price, SlowMem at a quarter, CompressedRam at a tenth: demoting a
    /// cold page is how a near-bankrupt manager cuts its bill without
    /// giving pages up.
    pub tier_multipliers: [f64; MemTier::COUNT],
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            charge_per_mb_sec: 1.0,
            income_per_sec: 32.0,
            savings_cap: 1_000.0,
            savings_tax_per_sec: 0.05,
            io_charge_per_block: 0.01,
            free_when_uncontended: true,
            tier_multipliers: [1.0, 0.25, 0.1],
        }
    }
}

/// Coordinator-side dynamic price discovery (DESIGN.md §15): per-tier
/// rents adjusted once per epoch by a bounded multiplicative update from
/// observed utilization.
///
/// Each call to [`PriceSchedule::observe`] takes the epoch's DRAM
/// utilization in integer *milli-units* (`1000 · demand / capacity`,
/// computed in integer arithmetic by the caller) and moves every tier's
/// rent by the same factor
/// `clamp(1 + gain·(util − target), 1 − step_cap, 1 + step_cap)`,
/// then clamps each rent into `[floor_mult·base, ceil_mult·base]`.
///
/// # Determinism
///
/// The schedule is a pure fold over the utilization sequence: its state
/// after `k` epochs depends only on the base rents, the tuning constants
/// and the `k` observed integers. The update uses only IEEE-exact f64
/// operations (multiply, add, subtract, compare — no `exp`/`ln` and no
/// platform `libm` calls), so the rent trajectory is bit-identical on
/// every platform and for every `--shards`/`--jobs` value, provided the
/// utilization integers are (they are: the shard coordinator computes
/// them from lane-order-merged counters).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceSchedule {
    base: [f64; MemTier::COUNT],
    prices: [f64; MemTier::COUNT],
    gain_per_milli: f64,
    target_util_milli: u64,
    step_cap: f64,
    floor_mult: f64,
    ceil_mult: f64,
    epochs_observed: u64,
}

impl PriceSchedule {
    /// A schedule starting (and anchored) at `base` rents with the
    /// default tuning: target utilization 800‰, gain 0.0008 per milli
    /// of error (full capacity vs an 80% target moves prices 16% per
    /// epoch), per-epoch step capped at ±25%, rents bounded to
    /// `[0.25·base, 8·base]`.
    pub fn new(base: [f64; MemTier::COUNT]) -> Self {
        PriceSchedule {
            base,
            prices: base,
            gain_per_milli: 0.0008,
            target_util_milli: 800,
            step_cap: 0.25,
            floor_mult: 0.25,
            ceil_mult: 8.0,
            epochs_observed: 0,
        }
    }

    /// A frozen schedule: zero gain, so every epoch re-posts `base`
    /// unchanged. Used to run the economy plumbing in a provably
    /// price-neutral mode.
    pub fn flat(base: [f64; MemTier::COUNT]) -> Self {
        PriceSchedule {
            gain_per_milli: 0.0,
            ..PriceSchedule::new(base)
        }
    }

    /// Overrides the gain (fractional price move per milli-unit of
    /// utilization error).
    pub fn with_gain(mut self, gain_per_milli: f64) -> Self {
        self.gain_per_milli = gain_per_milli;
        self
    }

    /// Overrides the utilization target, in milli-units (800 = 80%).
    pub fn with_target_util_milli(mut self, target: u64) -> Self {
        self.target_util_milli = target;
        self
    }

    /// Overrides the per-epoch step cap (0.25 = at most ±25% per epoch).
    pub fn with_step_cap(mut self, cap: f64) -> Self {
        self.step_cap = cap;
        self
    }

    /// Overrides the rent bounds as multiples of the base rents.
    pub fn with_bounds(mut self, floor_mult: f64, ceil_mult: f64) -> Self {
        self.floor_mult = floor_mult;
        self.ceil_mult = ceil_mult;
        self
    }

    /// The current per-tier rents (drams per MB-second).
    pub fn prices(&self) -> [f64; MemTier::COUNT] {
        self.prices
    }

    /// The base (anchor) per-tier rents.
    pub fn base(&self) -> [f64; MemTier::COUNT] {
        self.base
    }

    /// The current DRAM rent.
    pub fn dram_rent(&self) -> f64 {
        self.prices[MemTier::Dram.index()]
    }

    /// Epochs observed so far.
    pub fn epochs_observed(&self) -> u64 {
        self.epochs_observed
    }

    /// Folds one epoch's observed utilization (milli-units) into the
    /// schedule and returns the updated per-tier rents.
    pub fn observe(&mut self, util_milli: u64) -> [f64; MemTier::COUNT] {
        let err = util_milli as f64 - self.target_util_milli as f64;
        let factor =
            (1.0 + self.gain_per_milli * err).clamp(1.0 - self.step_cap, 1.0 + self.step_cap);
        for tier in MemTier::all() {
            let i = tier.index();
            self.prices[i] = (self.prices[i] * factor).clamp(
                self.base[i] * self.floor_mult,
                self.base[i] * self.ceil_mult,
            );
        }
        self.epochs_observed += 1;
        self.prices
    }
}

/// One manager's dram account.
#[derive(Debug, Clone, PartialEq)]
pub struct Account {
    balance: f64,
    income_per_sec: f64,
}

impl Account {
    /// Current balance in drams. A negative balance marks the account
    /// bankrupt; [`MemoryMarket::bill`] reports it and the machine responds
    /// by revoking frames through the SPCM's forced-reclamation protocol
    /// (see [`Machine::revoke`](crate::Machine::revoke)).
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// Income rate in drams per second.
    pub fn income_per_sec(&self) -> f64 {
        self.income_per_sec
    }
}

/// The memory market ledger.
///
/// # Example
///
/// ```
/// use epcm_core::types::ManagerId;
/// use epcm_managers::market::{MarketConfig, MemoryMarket};
/// use epcm_sim::clock::Timestamp;
///
/// let mut market = MemoryMarket::new(MarketConfig::default());
/// market.open_account(ManagerId(1), None);
/// // One second passes holding 256 frames (1 MB), market contended:
/// let bankrupt = market.bill(
///     Timestamp::from_micros(1_000_000), &[(ManagerId(1), 256)], true);
/// assert!(bankrupt.is_empty());
/// assert!(market.balance(ManagerId(1)).unwrap() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryMarket {
    config: MarketConfig,
    accounts: BTreeMap<u32, Account>,
    last_billed: Timestamp,
    total_charged: f64,
    total_income: f64,
    total_tax: f64,
    io_charges: u64,
    /// Dynamic per-tier rents installed by a [`PriceSchedule`]. `None`
    /// (the default, and the only state pre-economy code ever sees)
    /// keeps every quote and bill expression literally identical to the
    /// static `charge_per_mb_sec * tier_multipliers` path, so ledgers
    /// of price-schedule-free runs stay float-identical across builds.
    tier_rents: Option<[f64; MemTier::COUNT]>,
}

/// Renders a period charge as the milli-dram integer the trace carries.
///
/// Rents and holdings are non-negative, so a billed charge must be a
/// non-negative finite float; anything else is a pricing bug upstream,
/// caught here by the debug assert. The release-mode clamp keeps the
/// traced `charged` field honest regardless: a NaN or negative input
/// would otherwise saturate to 0 silently in the `as u64` cast, making
/// the billing trace understate what the ledger actually moved.
fn charge_milli(charge: f64) -> u64 {
    debug_assert!(
        charge.is_finite() && charge >= 0.0,
        "market charge must be non-negative finite, got {charge}"
    );
    if charge.is_finite() && charge > 0.0 {
        (charge * 1000.0).round() as u64
    } else {
        0
    }
}

impl MemoryMarket {
    /// Creates an empty ledger.
    pub fn new(config: MarketConfig) -> Self {
        MemoryMarket {
            config,
            accounts: BTreeMap::new(),
            last_billed: Timestamp::ZERO,
            total_charged: 0.0,
            total_income: 0.0,
            total_tax: 0.0,
            io_charges: 0,
            tier_rents: None,
        }
    }

    /// The market parameters.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Installs dynamic per-tier rents (drams per MB-second, indexed by
    /// [`MemTier::index`]), overriding the static
    /// `charge_per_mb_sec * tier_multipliers` pricing for every
    /// subsequent quote and bill. The flat (non-tiered) paths charge the
    /// DRAM rent. This is how a coordinator applies one epoch of a
    /// [`PriceSchedule`] to a ledger.
    pub fn set_tier_rents(&mut self, rents: [f64; MemTier::COUNT]) {
        self.tier_rents = Some(rents);
    }

    /// The dynamic per-tier rents currently installed, if any.
    pub fn tier_rents(&self) -> Option<[f64; MemTier::COUNT]> {
        self.tier_rents
    }

    /// Opens an account with the given income rate (`None` = the config
    /// default). Reopening an existing account adjusts its income only.
    pub fn open_account(&mut self, manager: ManagerId, income_per_sec: Option<f64>) {
        let income = income_per_sec.unwrap_or(self.config.income_per_sec);
        self.accounts
            .entry(manager.0)
            .and_modify(|a| a.income_per_sec = income)
            .or_insert(Account {
                balance: 0.0,
                income_per_sec: income,
            });
    }

    /// The account's balance, if it exists.
    pub fn balance(&self, manager: ManagerId) -> Option<f64> {
        self.accounts.get(&manager.0).map(|a| a.balance)
    }

    /// Shared view of an account.
    pub fn account(&self, manager: ManagerId) -> Option<&Account> {
        self.accounts.get(&manager.0)
    }

    /// The price in drams of holding `frames` frames for `duration`.
    pub fn quote(&self, frames: u64, duration: Micros) -> f64 {
        let mb = frames as f64 * BASE_PAGE_SIZE as f64 / (1024.0 * 1024.0);
        match self.tier_rents {
            Some(rents) => mb * rents[MemTier::Dram.index()] * duration.as_secs_f64(),
            None => mb * self.config.charge_per_mb_sec * duration.as_secs_f64(),
        }
    }

    /// Whether the account can currently pay for `frames` over `duration`.
    pub fn can_afford(&self, manager: ManagerId, frames: u64, duration: Micros) -> bool {
        match self.accounts.get(&manager.0) {
            Some(a) => a.balance >= self.quote(frames, duration),
            None => false,
        }
    }

    /// How long the account must save (at its income rate, holding
    /// nothing) before it can afford `frames` for `duration`. `Some(ZERO)`
    /// if already affordable, `None` if the account does not exist or has
    /// no income. This is the query a batch manager uses to decide when to
    /// swap back in (§2.4).
    pub fn time_until_affordable(
        &self,
        manager: ManagerId,
        frames: u64,
        duration: Micros,
    ) -> Option<Micros> {
        let account = self.accounts.get(&manager.0)?;
        let needed = self.quote(frames, duration) - account.balance;
        if needed <= 0.0 {
            return Some(Micros::ZERO);
        }
        if account.income_per_sec <= 0.0 {
            return None;
        }
        Some(Micros::from_secs_f64(needed / account.income_per_sec))
    }

    /// Charges an account for `blocks` 4 KB transfers of I/O. With the
    /// asynchronous writeback pipeline the manager invokes this when a
    /// writeback *completes* (its disk reservation drains), not when the
    /// page is submitted — I/O is billed at completion.
    pub fn charge_io(&mut self, manager: ManagerId, blocks: u64) {
        if let Some(a) = self.accounts.get_mut(&manager.0) {
            let charge = blocks as f64 * self.config.io_charge_per_block;
            a.balance -= charge;
            self.total_charged += charge;
            self.io_charges += blocks;
        }
    }

    /// Total 4 KB blocks billed through [`MemoryMarket::charge_io`] over
    /// the ledger's lifetime.
    pub fn io_charges(&self) -> u64 {
        self.io_charges
    }

    /// Imposes a penalty charge on an account — the SPCM's fee for frames
    /// it had to seize by force. Counts toward `total_charged`, so
    /// [`MemoryMarket::ledger_residual`] stays conserved.
    pub fn debit(&mut self, manager: ManagerId, amount: f64) {
        if let Some(a) = self.accounts.get_mut(&manager.0) {
            a.balance -= amount;
            self.total_charged += amount;
        }
    }

    /// Grants a one-off credit — the arrival stake a newly admitted
    /// tenant brings to the economy, without which a zero-balance
    /// account could never afford its first frame request. Recorded as
    /// a negative charge, so [`MemoryMarket::ledger_residual`] stays
    /// conserved.
    pub fn credit(&mut self, manager: ManagerId, amount: f64) {
        self.debit(manager, -amount);
    }

    /// Settles and closes out a manager's account at failover or
    /// destruction: the remaining balance (positive or negative) is
    /// forfeited to the system and the income stream stops, so a dead
    /// manager neither accrues drams nor carries debt forward. The
    /// forfeit counts toward `total_charged`, keeping
    /// [`MemoryMarket::ledger_residual`] conserved. Returns the settled
    /// balance, or `None` if the account does not exist.
    pub fn settle_account(&mut self, manager: ManagerId) -> Option<f64> {
        let a = self.accounts.get_mut(&manager.0)?;
        let balance = a.balance;
        a.balance = 0.0;
        a.income_per_sec = 0.0;
        self.total_charged += balance;
        Some(balance)
    }

    /// Advances the ledger to `now`: pays income, charges `M*D*T` for the
    /// supplied holdings (unless the market is uncontended and configured
    /// free), and applies the savings tax. Returns the managers whose
    /// balance went negative — the SPCM "has the ability to force the
    /// return of memory from processes that have exhausted their dram
    /// supply".
    pub fn bill(
        &mut self,
        now: Timestamp,
        holdings: &[(ManagerId, u64)],
        contended: bool,
    ) -> Vec<ManagerId> {
        self.bill_traced(now, holdings, contended, None)
    }

    /// [`MemoryMarket::bill`], additionally recording one
    /// [`EventKind::MarketCharge`] per charged holding into `tracer`
    /// (charge and resulting balance in millidrams).
    pub fn bill_traced(
        &mut self,
        now: Timestamp,
        holdings: &[(ManagerId, u64)],
        contended: bool,
        tracer: Option<&SharedTracer>,
    ) -> Vec<ManagerId> {
        let dt = now.saturating_duration_since(self.last_billed);
        self.last_billed = now;
        if dt == Micros::ZERO {
            return Vec::new();
        }
        let secs = dt.as_secs_f64();
        for a in self.accounts.values_mut() {
            let income = a.income_per_sec * secs;
            a.balance += income;
            self.total_income += income;
        }
        if contended || !self.config.free_when_uncontended {
            let rate = match self.tier_rents {
                Some(rents) => rents[MemTier::Dram.index()],
                None => self.config.charge_per_mb_sec,
            };
            for &(mgr, frames) in holdings {
                if let Some(a) = self.accounts.get_mut(&mgr.0) {
                    let charge =
                        rate * (frames as f64 * BASE_PAGE_SIZE as f64 / (1024.0 * 1024.0)) * secs;
                    a.balance -= charge;
                    self.total_charged += charge;
                    if let Some(t) = tracer {
                        t.record(TraceEvent::new(
                            now.as_micros(),
                            EventKind::MarketCharge {
                                manager: mgr.0,
                                charged: charge_milli(charge),
                                balance: (a.balance * 1000.0).round() as i64,
                            },
                        ));
                    }
                }
            }
        }
        for a in self.accounts.values_mut() {
            if a.balance > self.config.savings_cap {
                let tax = (a.balance - self.config.savings_cap)
                    * (self.config.savings_tax_per_sec * secs).min(1.0);
                a.balance -= tax;
                self.total_tax += tax;
            }
        }
        self.accounts
            .iter()
            .filter(|(_, a)| a.balance < 0.0)
            .map(|(&id, _)| ManagerId(id))
            .collect()
    }

    /// The price in drams of holding `frames[t]` frames of each tier for
    /// `duration`: the sum over tiers of `M * D * T` scaled by that
    /// tier's multiplier.
    pub fn quote_tiered(&self, frames: &[u64; MemTier::COUNT], duration: Micros) -> f64 {
        let secs = duration.as_secs_f64();
        MemTier::all()
            .into_iter()
            .map(|tier| {
                let mb = frames[tier.index()] as f64 * BASE_PAGE_SIZE as f64 / (1024.0 * 1024.0);
                match self.tier_rents {
                    // The branches keep the pre-schedule expression (and
                    // its f64 association order) literally intact when no
                    // dynamic rents are installed.
                    Some(rents) => mb * rents[tier.index()] * secs,
                    None => {
                        mb * self.config.charge_per_mb_sec
                            * self.config.tier_multipliers[tier.index()]
                            * secs
                    }
                }
            })
            .sum()
    }

    /// [`MemoryMarket::bill_traced`] for tiered machines: each holding is
    /// a per-tier frame vector priced by [`MemoryMarket::quote_tiered`].
    /// Income, the uncontended-free rule, the savings tax and bankruptcy
    /// reporting are identical to the flat path; only the charge
    /// expression changes.
    pub fn bill_tiered_traced(
        &mut self,
        now: Timestamp,
        holdings: &[(ManagerId, [u64; MemTier::COUNT])],
        contended: bool,
        tracer: Option<&SharedTracer>,
    ) -> Vec<ManagerId> {
        let dt = now.saturating_duration_since(self.last_billed);
        self.last_billed = now;
        if dt == Micros::ZERO {
            return Vec::new();
        }
        let secs = dt.as_secs_f64();
        for a in self.accounts.values_mut() {
            let income = a.income_per_sec * secs;
            a.balance += income;
            self.total_income += income;
        }
        if contended || !self.config.free_when_uncontended {
            for (mgr, frames) in holdings {
                let charge = self.quote_tiered(frames, dt);
                if let Some(a) = self.accounts.get_mut(&mgr.0) {
                    a.balance -= charge;
                    self.total_charged += charge;
                    if let Some(t) = tracer {
                        t.record(TraceEvent::new(
                            now.as_micros(),
                            EventKind::MarketCharge {
                                manager: mgr.0,
                                charged: charge_milli(charge),
                                balance: (a.balance * 1000.0).round() as i64,
                            },
                        ));
                    }
                }
            }
        }
        for a in self.accounts.values_mut() {
            if a.balance > self.config.savings_cap {
                let tax = (a.balance - self.config.savings_cap)
                    * (self.config.savings_tax_per_sec * secs).min(1.0);
                a.balance -= tax;
                self.total_tax += tax;
            }
        }
        self.accounts
            .iter()
            .filter(|(_, a)| a.balance < 0.0)
            .map(|(&id, _)| ManagerId(id))
            .collect()
    }

    /// Total drams charged for memory and I/O so far.
    pub fn total_charged(&self) -> f64 {
        self.total_charged
    }

    /// Total income paid so far.
    pub fn total_income(&self) -> f64 {
        self.total_income
    }

    /// Total savings tax collected so far.
    pub fn total_tax(&self) -> f64 {
        self.total_tax
    }

    /// Ledger conservation check: sum of balances must equal income minus
    /// charges minus tax (property-tested). Exactly zero in exact
    /// arithmetic; in f64 it accumulates rounding error bounded by
    /// [`MemoryMarket::residual_bound`] — economy runs assert that bound
    /// at the end of every run.
    pub fn ledger_residual(&self) -> f64 {
        let balances: f64 = self.accounts.values().map(|a| a.balance).sum();
        balances - (self.total_income - self.total_charged - self.total_tax)
    }

    /// A conservative bound on `|ledger_residual()|` from f64 rounding.
    ///
    /// Every billing event performs a constant handful of additions on
    /// one balance and on the three running totals; each addition
    /// contributes at most half an ulp of *relative* error, so after `N`
    /// events the residual is bounded by `c · N · ε · S`, where
    /// `S = |income| + |charged| + |tax|` bounds the magnitudes being
    /// summed and `ε = 2⁻⁵²`. The ledger does not count `N`, but even
    /// `N = 2²⁰` events at `c = 4` gives `4 · 2²⁰ · 2⁻⁵² ≈ 9.3e-10`
    /// relative — so `1e-9 · S` holds for any run this repository
    /// performs (tens of thousands of billing events) with ~50×
    /// headroom, while staying ~9 orders of magnitude below a
    /// drams-scale accounting bug.
    pub fn residual_bound(&self) -> f64 {
        1e-9 * (1.0 + self.total_income.abs() + self.total_charged.abs() + self.total_tax.abs())
    }
}

impl fmt::Display for MemoryMarket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "market: {} accounts, {:.1} income, {:.1} charged, {:.1} tax",
            self.accounts.len(),
            self.total_income,
            self.total_charged,
            self.total_tax
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mkt() -> MemoryMarket {
        MemoryMarket::new(MarketConfig::default())
    }

    const SEC: Timestamp = Timestamp::from_micros(1_000_000);

    #[test]
    fn income_accrues() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(10.0));
        let bankrupt = m.bill(SEC, &[], true);
        assert!(bankrupt.is_empty());
        assert!((m.balance(ManagerId(1)).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn holding_memory_costs_m_d_t() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(0.0));
        // Give a starting balance via income trick: bill once with income.
        m.open_account(ManagerId(1), Some(100.0));
        m.bill(SEC, &[], true);
        m.open_account(ManagerId(1), Some(0.0));
        let before = m.balance(ManagerId(1)).unwrap();
        // 2 MB for 1 second at D=1 dram/MB-sec = 2 drams.
        m.bill(
            Timestamp::from_micros(2_000_000),
            &[(ManagerId(1), 512)],
            true,
        );
        let after = m.balance(ManagerId(1)).unwrap();
        assert!(
            (before - after - 2.0).abs() < 1e-9,
            "charged {}",
            before - after
        );
    }

    #[test]
    fn uncontended_memory_is_free() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(0.0));
        m.bill(SEC, &[(ManagerId(1), 1024)], false);
        assert_eq!(m.balance(ManagerId(1)).unwrap(), 0.0);
        // Contended: same holding now costs.
        m.bill(
            Timestamp::from_micros(2_000_000),
            &[(ManagerId(1), 1024)],
            true,
        );
        assert!(m.balance(ManagerId(1)).unwrap() < 0.0);
    }

    #[test]
    fn bankruptcy_is_reported() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(0.0));
        let bankrupt = m.bill(SEC, &[(ManagerId(1), 2560)], true); // 10 MB, no income
        assert_eq!(bankrupt, vec![ManagerId(1)]);
    }

    #[test]
    fn savings_tax_applies_above_cap() {
        let mut m = MemoryMarket::new(MarketConfig {
            savings_cap: 5.0,
            savings_tax_per_sec: 0.5,
            ..MarketConfig::default()
        });
        m.open_account(ManagerId(1), Some(10.0));
        m.bill(SEC, &[], true); // balance 10, cap 5 -> tax 0.5*5 = 2.5
        let b = m.balance(ManagerId(1)).unwrap();
        assert!((b - 7.5).abs() < 1e-9, "balance {b}");
        assert!(m.total_tax() > 0.0);
    }

    #[test]
    fn debit_charges_and_conserves() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(10.0));
        m.bill(SEC, &[], true); // +10 income
        m.debit(ManagerId(1), 4.0);
        assert!((m.balance(ManagerId(1)).unwrap() - 6.0).abs() < 1e-9);
        assert!((m.total_charged() - 4.0).abs() < 1e-9);
        assert!(m.ledger_residual().abs() < 1e-9);
        // Debiting an unknown account is a no-op.
        m.debit(ManagerId(9), 100.0);
        assert!(m.ledger_residual().abs() < 1e-9);
    }

    #[test]
    fn io_charge() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(0.0));
        m.charge_io(ManagerId(1), 100);
        assert!((m.balance(ManagerId(1)).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn quote_and_affordability() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(100.0));
        // 256 frames = 1 MB for 10 s at D=1 => 10 drams.
        let q = m.quote(256, Micros::from_secs(10));
        assert!((q - 10.0).abs() < 1e-9);
        assert!(!m.can_afford(ManagerId(1), 256, Micros::from_secs(10)));
        m.bill(SEC, &[], true); // +100 income
        assert!(m.can_afford(ManagerId(1), 256, Micros::from_secs(10)));
    }

    #[test]
    fn time_until_affordable_matches_income() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(1.0));
        // Needs 10 drams at 1 dram/s: 10 s of saving.
        let t = m
            .time_until_affordable(ManagerId(1), 256, Micros::from_secs(10))
            .unwrap();
        assert_eq!(t, Micros::from_secs(10));
        assert_eq!(
            m.time_until_affordable(ManagerId(9), 1, Micros::from_secs(1)),
            None
        );
        m.open_account(ManagerId(2), Some(0.0));
        assert_eq!(
            m.time_until_affordable(ManagerId(2), 256, Micros::from_secs(10)),
            None,
            "no income, never affordable"
        );
    }

    #[test]
    fn ledger_conserves() {
        let mut m = mkt();
        for i in 0..4 {
            m.open_account(ManagerId(i), Some(i as f64 * 3.0));
        }
        let mut t = 0u64;
        for step in 1..50u64 {
            t += step * 37_000;
            let holdings = [
                (ManagerId(0), step * 10),
                (ManagerId(1), 500),
                (ManagerId(3), 2000),
            ];
            m.bill(Timestamp::from_micros(t), &holdings, step % 3 != 0);
            m.charge_io(ManagerId(2), step);
        }
        assert!(
            m.ledger_residual().abs() < 1e-6,
            "residual {}",
            m.ledger_residual()
        );
    }

    #[test]
    fn billing_is_idempotent_at_same_instant() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(10.0));
        m.bill(SEC, &[], true);
        let b = m.balance(ManagerId(1)).unwrap();
        m.bill(SEC, &[(ManagerId(1), 99999)], true);
        assert_eq!(m.balance(ManagerId(1)).unwrap(), b);
    }

    #[test]
    fn display_shows_totals() {
        let mut m = mkt();
        m.open_account(ManagerId(1), None);
        assert!(m.to_string().contains("1 accounts"));
    }

    #[test]
    fn price_schedule_is_a_pure_fold() {
        let base = [200.0, 50.0, 20.0];
        let utils = [1000u64, 1200, 400, 800, 950, 0, 1500];
        let mut a = PriceSchedule::new(base);
        let mut b = PriceSchedule::new(base);
        for &u in &utils {
            a.observe(u);
        }
        for &u in &utils {
            b.observe(u);
        }
        assert_eq!(a, b, "same inputs must give bit-identical schedules");
        assert_eq!(a.epochs_observed(), utils.len() as u64);
    }

    #[test]
    fn price_schedule_responds_and_clamps() {
        let base = [200.0, 50.0, 20.0];
        let mut s = PriceSchedule::new(base);
        // Sustained overload drives rents up...
        for _ in 0..50 {
            s.observe(1500);
        }
        assert!(s.dram_rent() > base[0]);
        // ...but never past the ceiling multiple.
        for (i, &b) in base.iter().enumerate() {
            assert!(s.prices()[i] <= b * 8.0 + 1e-9);
        }
        // Sustained idleness drives them down to the floor, not to zero.
        for _ in 0..100 {
            s.observe(0);
        }
        for (i, &b) in base.iter().enumerate() {
            assert!(s.prices()[i] >= b * 0.25 - 1e-9);
        }
        // A flat schedule never moves.
        let mut flat = PriceSchedule::flat(base);
        for u in [0u64, 500, 1000, 1500] {
            assert_eq!(flat.observe(u), base);
        }
    }

    #[test]
    fn price_schedule_step_is_capped() {
        let mut s = PriceSchedule::new([100.0, 25.0, 10.0]).with_step_cap(0.25);
        let before = s.dram_rent();
        // An absurd utilization spike still moves at most +25%.
        let after = s.observe(1_000_000)[0];
        assert!(after <= before * 1.25 + 1e-9, "{before} -> {after}");
    }

    #[test]
    fn tier_rents_override_quotes_and_bills() {
        let mut m = mkt();
        m.open_account(ManagerId(1), Some(0.0));
        let flat_quote = m.quote(256, SEC.duration_since(Timestamp::ZERO));
        m.set_tier_rents([2.0, 0.5, 0.2]);
        assert_eq!(m.tier_rents(), Some([2.0, 0.5, 0.2]));
        let dyn_quote = m.quote(256, SEC.duration_since(Timestamp::ZERO));
        assert!(
            (dyn_quote - 2.0 * flat_quote).abs() < 1e-12,
            "doubling the dram rent must double the flat quote"
        );
        // Tiered quotes price each tier at its absolute rent.
        let q = m.quote_tiered(&[256, 0, 0], SEC.duration_since(Timestamp::ZERO));
        assert!((q - dyn_quote).abs() < 1e-12);
        // Flat billing charges the dram rent.
        let bankrupt = m.bill(SEC, &[(ManagerId(1), 256)], true);
        assert_eq!(bankrupt, vec![ManagerId(1)]);
        assert!((m.balance(ManagerId(1)).unwrap() + dyn_quote).abs() < 1e-9);
    }

    #[test]
    fn residual_stays_within_documented_bound() {
        let mut m = mkt();
        for i in 0..8 {
            m.open_account(ManagerId(i), Some(1.0 + f64::from(i)));
        }
        let mut t = 0u64;
        for step in 1..200u64 {
            t += 13_000 + step * 911;
            m.set_tier_rents([1.0 + (step % 7) as f64, 0.5, 0.1]);
            let holdings = [
                (ManagerId((step % 8) as u32), step * 3),
                (ManagerId(((step + 3) % 8) as u32), 700),
            ];
            m.bill(Timestamp::from_micros(t), &holdings, step % 4 != 0);
            m.charge_io(ManagerId(((step + 5) % 8) as u32), step % 9);
            if step % 50 == 0 {
                m.settle_account(ManagerId(((step / 50) % 8) as u32));
            }
        }
        assert!(
            m.ledger_residual().abs() < m.residual_bound(),
            "residual {} exceeds bound {}",
            m.ledger_residual(),
            m.residual_bound()
        );
    }
}
