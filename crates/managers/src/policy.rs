//! Page-replacement policies.
//!
//! In V++ replacement policy is *manager* code, not kernel code. The
//! default manager "implements a clock algorithm \[12\] that allocates page
//! frames to each requester based on the number of page frames it has
//! referenced in some interval"; application-specific managers may use
//! anything. These policies are pure data structures over `(segment,
//! page)` candidates — the manager supplies hardware state (reference
//! bits, pins) through the probe callback, keeping the policies
//! independent of the kernel and directly unit-testable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use epcm_core::types::{PageNumber, SegmentId};
use epcm_sim::rng::Rng;

/// What the manager observed about a candidate page when the policy
/// probed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Referenced since last cleared; the prober must also have cleared
    /// the bit (second-chance semantics).
    Referenced,
    /// Not referenced: an eviction candidate.
    NotReferenced,
    /// Pinned by the manager; never evict.
    Pinned,
    /// No longer resident (already migrated away).
    Gone,
}

type Key = (SegmentId, PageNumber);

/// A replacement policy over resident pages.
///
/// Implementations are notified as pages become resident, get referenced
/// (when the manager samples reference information) and are removed;
/// [`ReplacementPolicy::select_victim`] picks the next page to evict,
/// probing current hardware state through the callback.
pub trait ReplacementPolicy: fmt::Debug {
    /// A page became resident.
    fn note_resident(&mut self, seg: SegmentId, page: PageNumber);

    /// A page left residency (evicted or segment closed).
    fn note_removed(&mut self, seg: SegmentId, page: PageNumber);

    /// The manager learned this page was referenced (sampling).
    fn note_referenced(&mut self, seg: SegmentId, page: PageNumber);

    /// Picks a victim, consulting `probe` for each candidate considered.
    /// Returns `None` when no evictable page exists.
    fn select_victim(
        &mut self,
        probe: &mut dyn FnMut(SegmentId, PageNumber) -> Probe,
    ) -> Option<Key>;

    /// Number of pages currently tracked.
    fn len(&self) -> usize;

    /// Whether no pages are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Multiset mirror of a lazy-deletion ring: O(log n) membership checks
/// on the fault path instead of O(n) `VecDeque::contains` scans. Counts
/// (rather than a plain set) keep the mirror exact even if a key is ever
/// enqueued twice.
#[derive(Debug, Default)]
struct RingIndex {
    counts: BTreeMap<Key, usize>,
}

impl RingIndex {
    fn contains(&self, key: &Key) -> bool {
        self.counts.contains_key(key)
    }

    /// One copy of `key` entered the ring.
    fn added(&mut self, key: Key) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// One copy of `key` permanently left the ring.
    fn dropped(&mut self, key: &Key) {
        if let Some(n) = self.counts.get_mut(key) {
            *n -= 1;
            if *n == 0 {
                self.counts.remove(key);
            }
        }
    }
}

/// The classic clock (second-chance) algorithm the default manager uses.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    ring: VecDeque<Key>,
    dead: BTreeSet<Key>,
    index: RingIndex,
}

impl ClockPolicy {
    /// Creates an empty clock.
    pub fn new() -> Self {
        ClockPolicy::default()
    }

    fn live_len(&self) -> usize {
        self.ring.len() - self.dead.len()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn note_resident(&mut self, seg: SegmentId, page: PageNumber) {
        let key = (seg, page);
        // A dead entry still sits in the ring (lazy deletion); reviving it
        // just clears the tombstone. Otherwise enqueue it.
        let was_dead = self.dead.remove(&key);
        if !was_dead || !self.index.contains(&key) {
            self.ring.push_back(key);
            self.index.added(key);
        }
    }

    fn note_removed(&mut self, seg: SegmentId, page: PageNumber) {
        // Lazy deletion: the hand skips dead entries.
        if self.index.contains(&(seg, page)) {
            self.dead.insert((seg, page));
        }
    }

    fn note_referenced(&mut self, _seg: SegmentId, _page: PageNumber) {
        // The clock reads reference state at probe time; sampling
        // notifications carry no extra information for it.
    }

    fn select_victim(
        &mut self,
        probe: &mut dyn FnMut(SegmentId, PageNumber) -> Probe,
    ) -> Option<Key> {
        // Two full sweeps bound the scan: every page gets at most one
        // second chance, so if a victim exists we find it.
        let mut budget = 2 * self.ring.len();
        while budget > 0 {
            budget -= 1;
            let key = self.ring.pop_front()?;
            if self.dead.remove(&key) {
                self.index.dropped(&key);
                continue;
            }
            match probe(key.0, key.1) {
                Probe::Referenced | Probe::Pinned => self.ring.push_back(key),
                Probe::NotReferenced => {
                    self.index.dropped(&key);
                    return Some(key);
                }
                Probe::Gone => {
                    self.index.dropped(&key);
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live_len()
    }
}

/// First-in-first-out: evicts the longest-resident page regardless of use.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<Key>,
    dead: BTreeSet<Key>,
    index: RingIndex,
}

impl FifoPolicy {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        FifoPolicy::default()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn note_resident(&mut self, seg: SegmentId, page: PageNumber) {
        self.dead.remove(&(seg, page));
        if !self.index.contains(&(seg, page)) {
            self.queue.push_back((seg, page));
            self.index.added((seg, page));
        }
    }

    fn note_removed(&mut self, seg: SegmentId, page: PageNumber) {
        if self.index.contains(&(seg, page)) {
            self.dead.insert((seg, page));
        }
    }

    fn note_referenced(&mut self, _seg: SegmentId, _page: PageNumber) {}

    fn select_victim(
        &mut self,
        probe: &mut dyn FnMut(SegmentId, PageNumber) -> Probe,
    ) -> Option<Key> {
        let mut budget = self.queue.len();
        while budget > 0 {
            budget -= 1;
            let key = self.queue.pop_front()?;
            if self.dead.remove(&key) {
                self.index.dropped(&key);
                continue;
            }
            match probe(key.0, key.1) {
                Probe::Pinned => self.queue.push_back(key),
                Probe::Gone => {
                    self.index.dropped(&key);
                }
                // FIFO ignores the reference bit.
                Probe::Referenced | Probe::NotReferenced => {
                    self.index.dropped(&key);
                    return Some(key);
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.queue.len() - self.dead.len()
    }
}

/// Least-recently-used, driven by the manager's reference sampling: a
/// sampled reference moves the page to the protected end.
#[derive(Debug, Default)]
pub struct LruPolicy {
    // Front = least recently used.
    order: VecDeque<Key>,
    dead: BTreeSet<Key>,
    index: RingIndex,
}

impl LruPolicy {
    /// Creates an empty LRU.
    pub fn new() -> Self {
        LruPolicy::default()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn note_resident(&mut self, seg: SegmentId, page: PageNumber) {
        self.dead.remove(&(seg, page));
        if !self.index.contains(&(seg, page)) {
            self.order.push_back((seg, page));
            self.index.added((seg, page));
        }
    }

    fn note_removed(&mut self, seg: SegmentId, page: PageNumber) {
        if self.index.contains(&(seg, page)) {
            self.dead.insert((seg, page));
        }
    }

    fn note_referenced(&mut self, seg: SegmentId, page: PageNumber) {
        let key = (seg, page);
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    fn select_victim(
        &mut self,
        probe: &mut dyn FnMut(SegmentId, PageNumber) -> Probe,
    ) -> Option<Key> {
        let mut budget = self.order.len();
        while budget > 0 {
            budget -= 1;
            let key = self.order.pop_front()?;
            if self.dead.remove(&key) {
                self.index.dropped(&key);
                continue;
            }
            match probe(key.0, key.1) {
                Probe::Pinned => self.order.push_back(key),
                Probe::Gone => {
                    self.index.dropped(&key);
                }
                Probe::Referenced | Probe::NotReferenced => {
                    self.index.dropped(&key);
                    return Some(key);
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.order.len() - self.dead.len()
    }
}

/// Uniform-random eviction — the ablation baseline.
#[derive(Debug)]
pub struct RandomPolicy {
    pages: Vec<Key>,
    index: RingIndex,
    rng: Rng,
}

impl RandomPolicy {
    /// Creates an empty random policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            pages: Vec::new(),
            index: RingIndex::default(),
            rng: Rng::seed_from(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn note_resident(&mut self, seg: SegmentId, page: PageNumber) {
        if !self.index.contains(&(seg, page)) {
            self.pages.push((seg, page));
            self.index.added((seg, page));
        }
    }

    fn note_removed(&mut self, seg: SegmentId, page: PageNumber) {
        if self.index.contains(&(seg, page)) {
            self.pages.retain(|&k| k != (seg, page));
            self.index.dropped(&(seg, page));
        }
    }

    fn note_referenced(&mut self, _seg: SegmentId, _page: PageNumber) {}

    fn select_victim(
        &mut self,
        probe: &mut dyn FnMut(SegmentId, PageNumber) -> Probe,
    ) -> Option<Key> {
        let mut attempts = self.pages.len() * 2;
        while !self.pages.is_empty() && attempts > 0 {
            attempts -= 1;
            let idx = self.rng.index(self.pages.len());
            let key = self.pages[idx];
            match probe(key.0, key.1) {
                Probe::Pinned => {}
                Probe::Gone => {
                    self.pages.swap_remove(idx);
                    self.index.dropped(&key);
                }
                Probe::Referenced | Probe::NotReferenced => {
                    self.pages.swap_remove(idx);
                    self.index.dropped(&key);
                    return Some(key);
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn key(p: u64) -> Key {
        // SegmentId is crate-private to epcm-core; reuse the well-known id.
        (SegmentId::FRAME_POOL, PageNumber(p))
    }

    /// Drives a policy against a simple reference-bit table, clearing bits
    /// on probe the way a real manager does.
    fn probe_table(
        bits: &mut BTreeMap<Key, Probe>,
    ) -> impl FnMut(SegmentId, PageNumber) -> Probe + '_ {
        move |s, p| {
            let k = (s, p);
            match bits.get(&k).copied().unwrap_or(Probe::Gone) {
                Probe::Referenced => {
                    bits.insert(k, Probe::NotReferenced); // clear on probe
                    Probe::Referenced
                }
                other => other,
            }
        }
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut clock = ClockPolicy::new();
        let mut bits = BTreeMap::new();
        for p in 0..3 {
            clock.note_resident(key(p).0, key(p).1);
            bits.insert(key(p), Probe::NotReferenced);
        }
        bits.insert(key(0), Probe::Referenced);
        let mut probe = probe_table(&mut bits);
        // Page 0 is referenced: skipped (and cleared), so 1 is the victim.
        assert_eq!(clock.select_victim(&mut probe), Some(key(1)));
        // Next: 2, then 0 (its bit was cleared by the sweep).
        assert_eq!(clock.select_victim(&mut probe), Some(key(2)));
        assert_eq!(clock.select_victim(&mut probe), Some(key(0)));
        assert_eq!(clock.select_victim(&mut probe), None);
    }

    #[test]
    fn clock_never_evicts_referenced_while_unreferenced_exists() {
        let mut clock = ClockPolicy::new();
        let mut bits = BTreeMap::new();
        for p in 0..10 {
            clock.note_resident(key(p).0, key(p).1);
            bits.insert(
                key(p),
                if p % 2 == 0 {
                    Probe::Referenced
                } else {
                    Probe::NotReferenced
                },
            );
        }
        // First five victims must all be odd pages (the unreferenced ones).
        let mut probe = probe_table(&mut bits);
        for _ in 0..5 {
            let v = clock.select_victim(&mut probe).unwrap();
            assert_eq!(v.1.as_u64() % 2, 1, "evicted referenced page {v:?}");
        }
    }

    #[test]
    fn clock_skips_pinned_and_dead() {
        let mut clock = ClockPolicy::new();
        let mut bits = BTreeMap::new();
        for p in 0..3 {
            clock.note_resident(key(p).0, key(p).1);
        }
        bits.insert(key(0), Probe::Pinned);
        bits.insert(key(1), Probe::NotReferenced);
        bits.insert(key(2), Probe::NotReferenced);
        clock.note_removed(key(1).0, key(1).1);
        assert_eq!(clock.len(), 2);
        let mut probe = probe_table(&mut bits);
        assert_eq!(clock.select_victim(&mut probe), Some(key(2)));
        // Only the pinned page remains: no victim.
        assert_eq!(clock.select_victim(&mut probe), None);
    }

    #[test]
    fn clock_all_referenced_still_terminates() {
        let mut clock = ClockPolicy::new();
        let mut bits = BTreeMap::new();
        for p in 0..4 {
            clock.note_resident(key(p).0, key(p).1);
            bits.insert(key(p), Probe::Referenced);
        }
        // All referenced: the sweep clears them, second sweep evicts one.
        let mut probe = probe_table(&mut bits);
        assert!(clock.select_victim(&mut probe).is_some());
    }

    #[test]
    fn fifo_evicts_in_arrival_order_ignoring_references() {
        let mut fifo = FifoPolicy::new();
        let mut bits = BTreeMap::new();
        for p in 0..3 {
            fifo.note_resident(key(p).0, key(p).1);
            bits.insert(key(p), Probe::Referenced);
        }
        let mut probe = probe_table(&mut bits);
        assert_eq!(fifo.select_victim(&mut probe), Some(key(0)));
        assert_eq!(fifo.select_victim(&mut probe), Some(key(1)));
    }

    #[test]
    fn lru_victimises_least_recent() {
        let mut lru = LruPolicy::new();
        let mut bits = BTreeMap::new();
        for p in 0..3 {
            lru.note_resident(key(p).0, key(p).1);
            bits.insert(key(p), Probe::NotReferenced);
        }
        lru.note_referenced(key(0).0, key(0).1); // 0 becomes most recent
        let mut probe = probe_table(&mut bits);
        assert_eq!(lru.select_victim(&mut probe), Some(key(1)));
        assert_eq!(lru.select_victim(&mut probe), Some(key(2)));
        assert_eq!(lru.select_victim(&mut probe), Some(key(0)));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_respects_pins() {
        let mut bits = BTreeMap::new();
        for p in 0..8 {
            bits.insert(key(p), Probe::NotReferenced);
        }
        bits.insert(key(3), Probe::Pinned);
        let run = |seed| {
            let mut pol = RandomPolicy::new(seed);
            for p in 0..8 {
                pol.note_resident(key(p).0, key(p).1);
            }
            let mut local = bits.clone();
            let mut probe = probe_table(&mut local);
            let mut order = Vec::new();
            while let Some(v) = pol.select_victim(&mut probe) {
                order.push(v.1.as_u64());
            }
            order
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7, "pinned page never evicted");
        assert!(!a.contains(&3));
    }

    #[test]
    fn removed_then_resident_again_is_tracked() {
        let mut clock = ClockPolicy::new();
        clock.note_resident(key(0).0, key(0).1);
        clock.note_removed(key(0).0, key(0).1);
        assert_eq!(clock.len(), 0);
        assert!(clock.is_empty());
        clock.note_resident(key(0).0, key(0).1);
        assert_eq!(clock.len(), 1);
        let mut probe = |_: SegmentId, _: PageNumber| Probe::NotReferenced;
        assert_eq!(clock.select_victim(&mut probe), Some(key(0)));
    }
}
