//! Application-specific page coloring.
//!
//! §1: "an application can allocate physical pages to virtual pages to
//! minimize mapping collisions in physically addressed caches and TLBs,
//! implementing page coloring \[15\] on an application-specific basis". The
//! specialisation asks the SPCM for frames whose color (physical page
//! number modulo the number of colors) matches the virtual page's color,
//! so consecutive virtual pages never collide in a direct-mapped
//! physically-indexed cache.

use std::collections::BTreeMap;

use epcm_core::kernel::Kernel;
use epcm_core::types::{PageNumber, SegmentId};

use crate::generic::{GenericManager, Specialization};
use crate::manager::ManagerMode;
use crate::spcm::PhysConstraint;

/// The coloring specialisation: virtual page `p` gets a frame of color
/// `p % colors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColoringSpec {
    colors: u32,
}

impl ColoringSpec {
    /// Creates a spec for a cache with `colors` page colors (cache size /
    /// (associativity × page size)).
    ///
    /// # Panics
    ///
    /// Panics if `colors` is zero.
    pub fn new(colors: u32) -> Self {
        assert!(colors > 0, "a cache has at least one color");
        ColoringSpec { colors }
    }

    /// Number of colors.
    pub fn colors(&self) -> u32 {
        self.colors
    }
}

impl Specialization for ColoringSpec {
    fn frame_constraint(&self, _seg: SegmentId, page: PageNumber) -> PhysConstraint {
        PhysConstraint::Color {
            color: (page.as_u64() % self.colors as u64) as u32,
            colors: self.colors,
        }
    }
}

/// A manager allocating color-matched frames.
pub type ColoringManager = GenericManager<ColoringSpec>;

/// Creates a page-coloring manager running in the faulting process.
pub fn coloring_manager(colors: u32) -> ColoringManager {
    GenericManager::new(ColoringSpec::new(colors), ManagerMode::FaultingProcess)
}

/// Audit of a segment's frame-color assignment against the ideal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorAudit {
    /// Pages whose frame color matches their virtual color.
    pub matched: u64,
    /// Pages whose frame color differs (constraint degraded).
    pub mismatched: u64,
    /// Resident pages per frame color.
    pub per_color: BTreeMap<u32, u64>,
}

impl ColorAudit {
    /// Worst-case overcommit: the most-loaded color's page count minus the
    /// ideal even share, i.e. the extra conflict pressure a direct-mapped
    /// cache sees. Zero for a perfectly balanced assignment.
    pub fn max_overcommit(&self) -> u64 {
        if self.per_color.is_empty() {
            return 0;
        }
        let total: u64 = self.per_color.values().sum();
        let colors = self.per_color.len() as u64;
        let ideal = total.div_ceil(colors);
        self.per_color
            .values()
            .map(|&c| c.saturating_sub(ideal))
            .max()
            .unwrap_or(0)
    }
}

/// Audits a segment's resident pages against a `colors`-color cache.
///
/// # Errors
///
/// Kernel segment errors.
pub fn audit_colors(
    kernel: &Kernel,
    seg: SegmentId,
    colors: u32,
) -> Result<ColorAudit, epcm_core::KernelError> {
    let mut audit = ColorAudit {
        matched: 0,
        mismatched: 0,
        per_color: BTreeMap::new(),
    };
    for (p, e) in kernel.segment(seg)?.resident() {
        let frame_color = e.frame.color(colors);
        let want = (p.as_u64() % colors as u64) as u32;
        if frame_color == want {
            audit.matched += 1;
        } else {
            audit.mismatched += 1;
        }
        *audit.per_color.entry(frame_color).or_insert(0) += 1;
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::{AccessKind, SegmentKind};

    #[test]
    fn colored_allocation_matches_virtual_colors() {
        let mut m = Machine::new(512);
        let id = m.register_manager(Box::new(coloring_manager(8)));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        for p in 0..32 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        let audit = audit_colors(m.kernel(), seg, 8).unwrap();
        assert_eq!(audit.matched, 32);
        assert_eq!(audit.mismatched, 0);
        assert_eq!(audit.max_overcommit(), 0);
    }

    #[test]
    fn uncolored_allocation_skews_colors() {
        // The default first-fit allocation hands out frames in physical
        // order to a *sparse* virtual pattern, so virtual colors and frame
        // colors disagree.
        let mut m = Machine::with_default_manager(512);
        let seg = m.create_segment(SegmentKind::Anonymous, 256).unwrap();
        // Touch every 8th page: all the same virtual color.
        for p in (0..256).step_by(8) {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        let audit = audit_colors(m.kernel(), seg, 8).unwrap();
        // First-fit gives consecutive frames => colors 0..8 all used, but
        // the virtual pages all wanted color 0.
        assert!(audit.mismatched > 0);
    }

    #[test]
    fn coloring_degrades_gracefully_when_colors_exhausted() {
        // 32-frame machine, 8 colors -> only 4 frames per color. Touching
        // 8 pages of the same color forces the fallback path.
        let mut m = Machine::new(32);
        let id = m.register_manager(Box::new(coloring_manager(8)));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 128).unwrap();
        for i in 0..6 {
            m.touch(seg, i * 8, AccessKind::Write).unwrap(); // all color 0
        }
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 6);
        let mgr = m
            .manager(id)
            .unwrap()
            .as_any()
            .downcast_ref::<ColoringManager>()
            .unwrap();
        assert!(mgr.generic_stats().constraint_misses > 0);
    }

    #[test]
    fn audit_overcommit_math() {
        let audit = ColorAudit {
            matched: 0,
            mismatched: 0,
            per_color: [(0u32, 6u64), (1, 2)].into_iter().collect(),
        };
        // total 8, 2 colors, ideal 4 -> color 0 overcommits by 2.
        assert_eq!(audit.max_overcommit(), 2);
        let empty = ColorAudit {
            matched: 0,
            mismatched: 0,
            per_color: BTreeMap::new(),
        };
        assert_eq!(empty.max_overcommit(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn zero_colors_panics() {
        ColoringSpec::new(0);
    }
}
