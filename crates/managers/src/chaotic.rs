//! A misbehaving segment manager for chaos experiments.
//!
//! [`ChaoticManager`] wraps a [`DefaultSegmentManager`] and behaves
//! identically until a [`ChaosEvent`] is injected with
//! [`ChaoticManager::inject`]. The next upcall then misbehaves in the
//! injected way:
//!
//! * [`ChaosEvent::Crash`] — the fault handler panics mid-upcall; the
//!   host is expected to contain it with `catch_unwind`.
//! * [`ChaosEvent::Hang`] — the handler wedges for N scheduling quanta
//!   (virtual time), busting any watchdog deadline before replying.
//! * [`ChaosEvent::SlowReply`] — the handler replies late but possibly
//!   still inside the deadline.
//! * [`ChaosEvent::Byzantine`] — the *next reclaim* lies: it first tries
//!   to return frames it was never granted (which the SPCM must reject),
//!   then claims full compliance while returning nothing.
//!
//! The wrapper is how the deterministic `ChaosPlan` schedule (from
//! `epcm-sim`) becomes concrete manager misbehaviour inside a
//! [`Machine`](crate::Machine): the shard worker rolls the plan, injects
//! the outcome, and the kernel-side watchdog and revocation ladder take
//! it from there.

use epcm_core::fault::FaultEvent;
use epcm_core::kernel::Kernel;
use epcm_core::types::{ManagerId, PageNumber, SegmentId};
use epcm_sim::chaos::{ChaosEvent, HANG_TICK};

use crate::default_manager::DefaultSegmentManager;
use crate::manager::{Env, ManagerError, ManagerMode, SegmentManager};

/// A [`DefaultSegmentManager`] that misbehaves on command.
#[derive(Debug)]
pub struct ChaoticManager {
    inner: DefaultSegmentManager,
    lane: u64,
    pending: Option<ChaosEvent>,
    byzantine_armed: bool,
}

impl ChaoticManager {
    /// A server-mode chaotic manager for tenant `lane` (the lane only
    /// labels panic messages).
    pub fn server(lane: u64) -> Self {
        ChaoticManager {
            inner: DefaultSegmentManager::server(),
            lane,
            pending: None,
            byzantine_armed: false,
        }
    }

    /// Arms the next upcall with `event`. A second injection before the
    /// first is consumed overwrites it (the schedule moved on).
    pub fn inject(&mut self, event: ChaosEvent) {
        if matches!(event, ChaosEvent::Byzantine) {
            self.byzantine_armed = true;
        } else {
            self.pending = Some(event);
        }
    }

    /// The injected event waiting to fire, if any.
    pub fn pending(&self) -> Option<ChaosEvent> {
        self.pending
    }

    /// Whether the next reclaim will lie.
    pub fn byzantine_armed(&self) -> bool {
        self.byzantine_armed
    }

    /// The wrapped honest manager (for its statistics).
    pub fn inner(&self) -> &DefaultSegmentManager {
        &self.inner
    }
}

impl SegmentManager for ChaoticManager {
    fn id(&self) -> ManagerId {
        self.inner.id()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn set_id(&mut self, id: ManagerId) {
        self.inner.set_id(id);
    }

    fn mode(&self) -> ManagerMode {
        self.inner.mode()
    }

    fn attach(&mut self, env: &mut Env<'_>, segment: SegmentId) -> Result<(), ManagerError> {
        self.inner.attach(env, segment)
    }

    fn handle_fault(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError> {
        match self.pending.take() {
            Some(ChaosEvent::Crash) => {
                panic!("chaos: injected crash in lane {} manager", self.lane)
            }
            Some(ChaosEvent::Hang { ticks }) => {
                // Wedged: virtual time passes with no progress before the
                // (eventual) honest reply.
                env.kernel.charge(HANG_TICK * u64::from(ticks));
            }
            Some(ChaosEvent::SlowReply { extra }) => {
                env.kernel.charge(extra);
            }
            Some(ChaosEvent::Byzantine) | None => {}
        }
        self.inner.handle_fault(env, fault)
    }

    fn reclaim(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        if self.byzantine_armed {
            self.byzantine_armed = false;
            // First try to return frames that were never granted: one
            // bogus page more than the ledger holds. The SPCM rejects
            // this before touching the kernel; the lie costs nothing but
            // proves the rejection path.
            let held = env.spcm.granted_to(self.id());
            let bogus: Vec<PageNumber> = (0..=held).map(PageNumber).collect();
            let rejected = env
                .spcm
                .return_frames(env.kernel, self.id(), SegmentId::FRAME_POOL, &bogus)
                .is_err();
            debug_assert!(rejected, "over-return must be rejected");
            // Then claim full compliance while returning nothing. The
            // machine cross-checks against the grant ledger and treats
            // the gap as a byzantine reply.
            return Ok(count);
        }
        self.inner.reclaim(env, count)
    }

    fn segment_closed(
        &mut self,
        env: &mut Env<'_>,
        segment: SegmentId,
    ) -> Result<(), ManagerError> {
        self.inner.segment_closed(env, segment)
    }

    fn tick(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        self.inner.tick(env)
    }

    fn free_frames(&self, kernel: &Kernel) -> u64 {
        self.inner.free_frames(kernel)
    }

    fn set_tracer(&mut self, tracer: epcm_trace::SharedTracer) {
        self.inner.set_tracer(tracer);
    }

    fn export_metrics(&self, metrics: &mut epcm_trace::MetricsRegistry) {
        self.inner.export_metrics(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epcm_core::types::{AccessKind, SegmentKind, UserId};
    use epcm_core::watchdog::WatchdogConfig;
    use epcm_sim::clock::Micros;
    use epcm_sim::cost::CostModel;
    use epcm_trace::EventKind;

    use crate::machine::Machine;
    use crate::spcm::RevocationConfig;

    /// A machine with a clean default manager (the heir) plus one
    /// chaotic manager owning a segment with every page resident.
    fn chaos_machine() -> (Machine, ManagerId, SegmentId) {
        let mut m = Machine::builder(128)
            .watchdog(WatchdogConfig::from_costs(&CostModel::decstation_5000_200()))
            .build();
        let heir = m.register_manager(Box::new(DefaultSegmentManager::server()));
        m.set_default_manager(heir);
        let chaotic = m.register_manager(Box::new(ChaoticManager::server(0)));
        let seg = m
            .create_segment_with(SegmentKind::Anonymous, 8, chaotic, UserId::SYSTEM)
            .unwrap();
        for p in 0..8 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        (m, chaotic, seg)
    }

    fn inject(m: &mut Machine, id: ManagerId, event: ChaosEvent) {
        m.with_manager(id, |mgr, _| {
            mgr.as_any_mut()
                .downcast_mut::<ChaoticManager>()
                .expect("chaotic manager")
                .inject(event);
            Ok(())
        })
        .unwrap();
    }

    fn frames_total(m: &Machine) -> u64 {
        let kernel = m.kernel();
        kernel
            .segment_ids()
            .map(|s| kernel.resident_pages(s).unwrap())
            .sum()
    }

    #[test]
    fn honest_until_injected() {
        let (mut m, chaotic, seg) = chaos_machine();
        m.touch(seg, 0, AccessKind::Read).unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 8);
        assert!(m.manager(chaotic).is_some());
    }

    #[test]
    fn hang_strikes_accumulate_to_failover() {
        let (mut m, chaotic, seg) = chaos_machine();
        m.enable_event_tracing(4096);
        let max = m.watchdog().unwrap().config().max_misses;
        // Each hang busts the fault deadline; the faults must be fresh
        // pages so the handler actually runs.
        for (i, p) in (8..).take(max as usize).enumerate() {
            m.kernel_mut().resize_segment(seg, 9 + i as u64).unwrap();
            inject(&mut m, chaotic, ChaosEvent::Hang { ticks: 2 });
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        // The third miss exhausted the strikes: failed over to the heir.
        assert!(m.manager(chaotic).is_none(), "manager should be gone");
        let heir = m.default_manager().unwrap();
        assert_eq!(m.kernel().segment(seg).unwrap().manager(), heir);
        // Warm handoff: resident pages stayed resident.
        assert!(m.kernel().resident_pages(seg).unwrap() >= 8);
        let counts = m.event_tracer().unwrap().kind_counts();
        assert_eq!(counts.get("deadline_missed"), Some(&(u64::from(max))));
        assert_eq!(counts.get("manager_failed_over"), Some(&1));
        assert_eq!(frames_total(&m), 128, "no stranded frames");
        // The segment still works under the heir.
        m.kernel_mut().resize_segment(seg, 16).unwrap();
        m.touch(seg, 15, AccessKind::Write).unwrap();
    }

    #[test]
    fn slow_reply_within_deadline_is_tolerated() {
        let (mut m, chaotic, seg) = chaos_machine();
        m.enable_event_tracing(1024);
        m.kernel_mut().resize_segment(seg, 9).unwrap();
        inject(
            &mut m,
            chaotic,
            ChaosEvent::SlowReply {
                extra: Micros::new(400),
            },
        );
        m.touch(seg, 8, AccessKind::Write).unwrap();
        assert!(m.manager(chaotic).is_some());
        let counts = m.event_tracer().unwrap().kind_counts();
        assert!(!counts.contains_key("deadline_missed"), "{counts:?}");
    }

    #[test]
    fn byzantine_reclaim_is_rejected_fined_and_seized() {
        let (mut m, chaotic, _seg) = chaos_machine();
        m.enable_event_tracing(4096);
        // Tighten the grace so the forced seizure fires within the test.
        m.spcm_mut().set_revocation_config(RevocationConfig {
            grace: Micros::ZERO,
            ..RevocationConfig::default()
        });
        let held_before = m.spcm().granted_to(chaotic);
        assert!(held_before > 0);
        inject(&mut m, chaotic, ChaosEvent::Byzantine);
        m.revoke(chaotic, 2).unwrap();
        let counts = m.event_tracer().unwrap().kind_counts();
        // The lie was detected and the demand proceeded by force.
        assert_eq!(counts.get("byzantine_reply"), Some(&1), "{counts:?}");
        assert_eq!(counts.get("forced_reclaim"), Some(&1), "{counts:?}");
        assert!(m.spcm().granted_to(chaotic) < held_before);
        assert_eq!(frames_total(&m), 128, "no stranded frames");
    }

    #[test]
    fn crash_panics_and_is_containable() {
        let (mut m, chaotic, seg) = chaos_machine();
        m.kernel_mut().resize_segment(seg, 9).unwrap();
        inject(&mut m, chaotic, ChaosEvent::Crash);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.touch(seg, 8, AccessKind::Write)
        }));
        assert!(result.is_err(), "injected crash must panic");
        // The machine survives the contained panic: the poisoned manager
        // can be failed over and the segment lives on under the heir.
        let heir = m.fail_over(chaotic).unwrap().expect("heir exists");
        assert_eq!(m.kernel().segment(seg).unwrap().manager(), heir);
        assert_eq!(frames_total(&m), 128, "no stranded frames");
    }

    #[test]
    fn failover_settles_the_market_account() {
        use crate::market::{MarketConfig, MemoryMarket};
        use crate::spcm::AllocationPolicy;

        let mut m = Machine::builder(128)
            .watchdog(WatchdogConfig::from_costs(&CostModel::decstation_5000_200()))
            .allocation(AllocationPolicy::Market {
                market: MemoryMarket::new(MarketConfig::default()),
                horizon: Micros::from_millis(10),
            })
            .build();
        let heir = m.register_manager(Box::new(DefaultSegmentManager::server()));
        m.set_default_manager(heir);
        let chaotic = m.register_manager(Box::new(ChaoticManager::server(0)));
        if let Some(market) = m.spcm_mut().market_mut() {
            market.open_account(heir, Some(50.0));
            market.open_account(chaotic, Some(50.0));
        }
        // Let income accrue so the frame requests are affordable.
        m.kernel_mut().charge(Micros::from_secs(2));
        m.tick().unwrap();
        let seg = m
            .create_segment_with(SegmentKind::Anonymous, 8, chaotic, UserId::SYSTEM)
            .unwrap();
        for p in 0..8 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        m.fail_over(chaotic).unwrap();
        let market = m.spcm().market().unwrap();
        assert_eq!(market.balance(chaotic), Some(0.0));
        assert!(
            market.ledger_residual().abs() < 1e-9,
            "residual {}",
            market.ledger_residual()
        );
    }

    #[test]
    fn deadline_missed_events_trace_the_ladder() {
        let (mut m, chaotic, seg) = chaos_machine();
        let tracer = m.enable_event_tracing(4096);
        m.kernel_mut().resize_segment(seg, 9).unwrap();
        inject(&mut m, chaotic, ChaosEvent::Hang { ticks: 1 });
        m.touch(seg, 8, AccessKind::Write).unwrap();
        let missed: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::DeadlineMissed { .. }))
            .collect();
        assert_eq!(missed.len(), 1);
        if let EventKind::DeadlineMissed {
            manager,
            deadline_us,
            elapsed_us,
            ..
        } = missed[0].kind
        {
            assert_eq!(manager, chaotic.0);
            assert!(elapsed_us > deadline_us);
        }
    }
}
