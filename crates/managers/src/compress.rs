//! Compressed swap — one of the "variety of sophisticated schemes"
//! (§2.1: "a process-level module can readily implement ... page
//! compression") that external page-cache management enables without
//! kernel changes.
//!
//! Evicted pages are run-length encoded before hitting backing store;
//! pages full of sparse or repetitive data (zeroed heaps, bitmap
//! structures) shrink dramatically, cutting both the I/O time and the
//! swap footprint. The compression is real: bytes round-trip exactly.
//!
//! The same scheme backs the `CompressedRam` memory tier: the default
//! manager's demotion path reuses [`rle_compress`] and [`CompressStats`]
//! to account the work a zram device would do when a page is demoted
//! into a `MemTier::CompressedRam` frame.

use std::collections::BTreeMap;

use epcm_core::types::{PageNumber, SegmentId, BASE_PAGE_SIZE};
use epcm_sim::disk::FileId;

use crate::generic::{Fill, GenericManager, Specialization};
use crate::manager::{Env, ManagerError, ManagerMode};

/// Run-length encodes `data`: `(count, byte)` pairs, count 1..=255.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = data.iter().copied().peekable();
    while let Some(byte) = iter.next() {
        let mut count = 1u8;
        while count < u8::MAX && iter.peek() == Some(&byte) {
            iter.next();
            count += 1;
        }
        out.push(count);
        out.push(byte);
    }
    out
}

/// Reverses [`rle_compress`].
pub fn rle_decompress(data: &[u8], out: &mut [u8]) {
    let mut pos = 0;
    let mut chunks = data.chunks_exact(2);
    for pair in &mut chunks {
        let (count, byte) = (pair[0] as usize, pair[1]);
        out[pos..pos + count].fill(byte);
        pos += count;
    }
}

/// Statistics of the compressed swap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressStats {
    /// Pages compressed out.
    pub compressed: u64,
    /// Pages decompressed back in.
    pub decompressed: u64,
    /// Raw bytes swapped.
    pub raw_bytes: u64,
    /// Compressed bytes actually written.
    pub stored_bytes: u64,
}

impl CompressStats {
    /// Overall compression ratio (raw/stored); 1.0 when nothing stored.
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// Location of one compressed blob in the swap log: `(offset, length)`.
type Blob = (u64, u64);
/// A segment's swap log: the file plus each page's blob location.
type SwapLog = (FileId, BTreeMap<u64, Blob>);

/// The compressing-swap specialisation.
#[derive(Debug, Default)]
pub struct CompressSpec {
    /// Per-segment swap log.
    swap: BTreeMap<u32, SwapLog>,
    stats: CompressStats,
}

impl CompressSpec {
    /// Creates the specialisation.
    pub fn new() -> Self {
        CompressSpec::default()
    }

    /// Compression statistics.
    pub fn stats(&self) -> CompressStats {
        self.stats
    }
}

impl Specialization for CompressSpec {
    fn fill(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        buf: &mut [u8],
    ) -> Result<Fill, ManagerError> {
        let Some((file, blobs)) = self.swap.get_mut(&seg.as_u32()) else {
            return Ok(Fill::Minimal);
        };
        let Some(&(offset, len)) = blobs.get(&page.as_u64()) else {
            return Ok(Fill::Minimal);
        };
        let mut compressed = vec![0u8; len as usize];
        let latency = env.store.read(*file, offset, &mut compressed)?;
        env.kernel.charge(latency);
        rle_decompress(&compressed, buf);
        self.stats.decompressed += 1;
        Ok(Fill::Filled)
    }

    fn write_back(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        data: &[u8],
    ) -> Result<(), ManagerError> {
        let compressed = rle_compress(data);
        let (file, blobs) = match self.swap.get_mut(&seg.as_u32()) {
            Some(e) => e,
            None => {
                let f = env.store.create(&format!("zswap-{}", seg.as_u32()), 0);
                self.swap
                    .entry(seg.as_u32())
                    .or_insert((f, BTreeMap::new()))
            }
        };
        // Append-only log of compressed blobs (a real implementation
        // would compact; the space accounting is what we demonstrate).
        let offset = env
            .store
            .size(*file)
            .map_err(epcm_core::KernelError::from)?;
        let latency = env.store.write(*file, offset, &compressed)?;
        env.kernel.charge(latency);
        blobs.insert(page.as_u64(), (offset, compressed.len() as u64));
        self.stats.compressed += 1;
        self.stats.raw_bytes += data.len() as u64;
        self.stats.stored_bytes += compressed.len() as u64;
        let _ = BASE_PAGE_SIZE;
        Ok(())
    }
}

/// A manager that swaps pages compressed.
pub type CompressingManager = GenericManager<CompressSpec>;

/// Creates a compressing-swap manager running in the faulting process.
pub fn compressing_manager() -> CompressingManager {
    GenericManager::new(CompressSpec::new(), ManagerMode::FaultingProcess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::SegmentKind;

    #[test]
    fn rle_roundtrip() {
        for data in [
            vec![0u8; 4096],
            (0..4096).map(|i| (i / 700) as u8).collect::<Vec<_>>(),
            (0..4096).map(|i| (i % 256) as u8).collect::<Vec<_>>(),
        ] {
            let c = rle_compress(&data);
            let mut back = vec![0u8; data.len()];
            rle_decompress(&c, &mut back);
            assert_eq!(back, data);
        }
    }

    #[test]
    fn rle_compresses_sparse_pages() {
        let sparse = vec![0u8; 4096];
        assert!(rle_compress(&sparse).len() < 64);
        let dense: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        assert!(rle_compress(&dense).len() > 4096, "incompressible grows");
    }

    fn setup() -> (Machine, epcm_core::ManagerId, SegmentId) {
        let mut m = Machine::new(64);
        let id = m.register_manager(Box::new(compressing_manager()));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        (m, id, seg)
    }

    #[test]
    fn evicted_pages_roundtrip_compressed() {
        let (mut m, id, seg) = setup();
        // Compressible content: long runs.
        for p in 0..16u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[p as u8; 2048])
                .unwrap();
        }
        m.with_manager(id, |mgr, env| {
            let mgr = mgr
                .as_any_mut()
                .downcast_mut::<CompressingManager>()
                .unwrap();
            mgr.shrink(env, 16).map(|_| ())
        })
        .unwrap();
        for p in 0..16u64 {
            let mut buf = [0u8; 2048];
            m.load(seg, p * BASE_PAGE_SIZE, &mut buf).unwrap();
            assert_eq!(buf, [p as u8; 2048], "page {p} corrupted by compression");
        }
        let stats = m
            .manager(id)
            .unwrap()
            .as_any()
            .downcast_ref::<CompressingManager>()
            .unwrap()
            .spec()
            .stats();
        assert_eq!(stats.compressed, 16);
        assert_eq!(stats.decompressed, 16);
        assert!(
            stats.ratio() > 50.0,
            "runs of one byte should compress >50x, got {:.1}",
            stats.ratio()
        );
    }

    #[test]
    fn swap_footprint_is_smaller_than_raw() {
        let (mut m, id, seg) = setup();
        for p in 0..8u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[0xEE; 4096])
                .unwrap();
        }
        m.with_manager(id, |mgr, env| {
            let mgr = mgr
                .as_any_mut()
                .downcast_mut::<CompressingManager>()
                .unwrap();
            mgr.shrink(env, 8).map(|_| ())
        })
        .unwrap();
        let swap = m.store().find("zswap-1").expect("swap file exists");
        let size = m.store().size(swap).unwrap();
        assert!(size < 8 * 4096 / 10, "swap file {size} bytes for 32 KB raw");
    }
}
