//! The sharded multi-tenant engine: intra-run concurrency with
//! byte-identical output for any worker count.
//!
//! The paper measured one application faulting against one kernel on
//! one CPU. The ROADMAP's north star — hundreds of managers faulting
//! concurrently against a shared economy — needs the kernel state
//! *partitioned*, not locked. This module runs `lanes` tenants, each a
//! full single-threaded [`Machine`] (kernel + store + SPCM + default
//! manager) owning one positional frame range of the global pool, and
//! groups contiguous lanes onto `shards` worker threads via
//! [`ShardLayout`]. Workers advance their tenants through bulk-
//! synchronous **epochs**; at every epoch barrier the cross-shard
//! effects travel to a single coordinator as explicit messages
//! ([`CrossShardMsg`]), are merged into one global order on the
//! `(time, seq)` tie-break by `ShardedEventQueue`, and are applied
//! there: spill-frame exchanges against the conservation-checked
//! [`SpillPool`] (the cross-shard `MigrateFrame` analogue) and memory-
//! market billing against one global [`MemoryMarket`] — the market is
//! the serialization point, never touched from worker threads.
//!
//! # Why `--shards 1` and `--shards N` are byte-identical
//!
//! 1. A lane's simulation depends only on its own config and the
//!    epoch plans it received — never on which worker ran it.
//! 2. The coordinator ingests reports indexed by shard and concatenates
//!    them lane-ascending, so message *insertion order* (and hence each
//!    message's global `seq`) is grouping-invariant; the merge replays
//!    the exact unsharded `(time, seq)` order (pinned by proptests in
//!    `epcm-sim`).
//! 3. All floating-point market arithmetic happens on the coordinator
//!    in lane order, so every balance is bit-identical.
//! 4. Thread scheduling only affects *when* reports arrive; the
//!    coordinator waits for all of them before acting.
//!
//! Default-manager shard affinity falls out of the construction: each
//! tenant's [`DefaultSegmentManager`] lives inside its lane's machine
//! and is only ever invoked by that lane's worker thread.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

use epcm_core::shard::{ShardId, ShardLayout};
use epcm_core::tier::{MemTier, TierLayout};
use epcm_core::types::{AccessKind, ManagerId, SegmentKind, UserId};
use epcm_core::watchdog::WatchdogConfig;
use epcm_sim::chaos::{ChaosEvent, ChaosPlan};
use epcm_sim::clock::{Micros, Timestamp};
use epcm_sim::cost::CostModel;
use epcm_sim::events::ShardedEventQueue;
use epcm_sim::rng::Rng;

use crate::chaotic::ChaoticManager;
use crate::default_manager::{DefaultManagerConfig, DefaultSegmentManager};
use crate::machine::Machine;
use crate::manager::ManagerMode;
use crate::market::{MarketConfig, MemoryMarket, PriceSchedule};
use crate::spcm::{AllocationPolicy, RevocationConfig};

/// Configures one sharded multi-tenant run. The *logical* workload —
/// lanes, frames, pages, epochs — is fixed here; the worker shard count
/// is a separate argument to [`run`] precisely because it must not
/// change any output byte.
#[derive(Debug, Clone)]
pub struct ShardEngineConfig {
    /// Number of tenant lanes (one machine, one manager, one account each).
    pub lanes: u32,
    /// Physical frames owned by each lane.
    pub frames_per_lane: u64,
    /// Pages in each tenant's segment (overcommitted past its frames).
    pub pages_per_lane: u64,
    /// Bulk-synchronous epochs to run.
    pub epochs: u32,
    /// Workload rounds each tenant runs per epoch.
    pub rounds_per_epoch: u32,
    /// Coordinator-owned spill frames available for cross-shard leases.
    pub spill_frames: u64,
    /// Seed mixed into every tenant's access-pattern generator.
    pub seed: u64,
    /// Chaos-injection schedule. `None` (the default constructions)
    /// leaves every path byte-identical to a chaos-free build: no
    /// watchdog is armed, no [`ChaoticManager`] is registered, and the
    /// coordinator emits no incident lines.
    pub chaos: Option<ChaosPlan>,
    /// Tenant churn: when set, each lane arrives and departs at epochs
    /// drawn deterministically from the seed, exercising mid-run
    /// account settlement and lease reclamation.
    pub churn: bool,
    /// The memory-market economy layer. `None` (every pre-economy
    /// construction) leaves all output byte-identical to pre-economy
    /// builds: the static [`shard_market`] is used, lanes are built
    /// flat, and no [`EconomyLedger`] is attached to the report.
    pub economy: Option<EconomyParams>,
}

/// The optional economy layer over a sharded run: heterogeneous
/// per-lane incomes, a coordinator [`PriceSchedule`] posting per-tier
/// rents each epoch, and (in tiered mode) lane-local market ledgers
/// that make the demotion ladder and the revocation protocol live
/// enforcement mechanisms.
///
/// Two ledgers exist in tiered mode, deliberately: the *coordinator*
/// ledger prices the shared machine (it bills at epoch barriers in
/// lane order, funds spill leases and settles departures — the f64
/// serialization point, exactly as in a plain run), while each lane's
/// *local* ledger is the paper's per-machine SPCM economy (§2.4): the
/// machine bills it at tick time, the default manager demotes cold
/// pages down the tier ladder when it is in the red, and
/// [`Machine::tick`] revokes frames from bankrupt managers. Both are
/// driven by the same posted rents.
#[derive(Debug, Clone)]
pub struct EconomyParams {
    /// Per-lane income rates (drams per second), indexed by lane. Must
    /// have exactly `lanes` entries. A lane's account is opened at its
    /// *arrival* epoch with this income — mid-run churn arrivals join
    /// the economy at their class rate, they do not bank income while
    /// absent.
    pub incomes: Vec<f64>,
    /// Arrival stake, in seconds of the lane's own income: the one-off
    /// credit a tenant brings, without which a zero-balance account
    /// could not afford its first frame request.
    pub stake_secs: f64,
    /// Base market parameters for the coordinator ledger and (tiered
    /// mode) each lane-local ledger.
    pub market: MarketConfig,
    /// The coordinator's price schedule. Its base rents are posted
    /// before epoch 0; each epoch's observed DRAM utilization folds
    /// into it and the updated rents are broadcast in the next
    /// [`EpochPlan`].
    pub schedule: PriceSchedule,
    /// When set, every lane machine is built with this tier layout
    /// (total must equal `frames_per_lane`) and a lane-local market
    /// ledger. When `None`, lanes are built exactly as in a plain run
    /// and the economy is observation-and-billing only.
    pub tiers: Option<TierLayout>,
    /// Affordability horizon for lane-local market admission (tiered
    /// mode): a frame request must be affordable for this long.
    pub horizon: Micros,
    /// Per-tick hot-page promotion budget for each lane's default
    /// manager (tiered mode; see
    /// [`DefaultManagerConfig::promotion_budget`]). 0 — the default in
    /// every committed preset — disables the ladder, keeping existing
    /// economy output byte-identical.
    pub promotion_budget: u64,
    /// Heat threshold for the lanes' promotion ladder (only meaningful
    /// with a nonzero `promotion_budget`).
    pub promotion_threshold: u64,
}

impl EconomyParams {
    /// Whether lanes run tiered machines with local enforcement.
    pub fn tiered(&self) -> bool {
        self.tiers.is_some()
    }
}

impl ShardEngineConfig {
    /// The reduced configuration used by `reproduce --shards` and the
    /// determinism tests: small enough to run in debug CI, overcommitted
    /// enough that every epoch faults, leases and bills.
    pub fn quick() -> ShardEngineConfig {
        ShardEngineConfig {
            lanes: 12,
            frames_per_lane: 32,
            pages_per_lane: 48,
            epochs: 3,
            rounds_per_epoch: 2,
            spill_frames: 24,
            seed: 0x5eed_cafe,
            chaos: None,
            churn: false,
            economy: None,
        }
    }

    /// A heavier configuration for the release-mode stress loop: more
    /// lanes and epochs, so interleaving bugs have more room to race.
    pub fn stress() -> ShardEngineConfig {
        ShardEngineConfig {
            lanes: 24,
            frames_per_lane: 32,
            pages_per_lane: 56,
            epochs: 4,
            rounds_per_epoch: 2,
            spill_frames: 40,
            seed: 0x57e5_5eed,
            chaos: None,
            churn: false,
            economy: None,
        }
    }

    /// The epoch window `[arrive, depart)` in which `lane` is active.
    /// A pure function of `(seed, lane)` — never of the worker grouping
    /// — so churn decisions are shard-count invariant. Without churn
    /// every lane runs the whole span.
    pub fn churn_window(&self, lane: u64) -> (u32, u32) {
        if !self.churn {
            return (0, self.epochs);
        }
        let mut rng = Rng::seed_from(
            self.seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xc4_0a05_a7c4_0a05,
        );
        let third = self.epochs / 3;
        let arrive = rng.below(u64::from(third) + 1) as u32;
        let depart = self.epochs - third + rng.below(u64::from(third) + 1) as u32;
        (arrive, depart.max(arrive + 1).min(self.epochs))
    }

    /// The [`ShardLayout`] of this configuration under `shards` workers
    /// (clamped to the lane count — an empty shard does no work).
    pub fn layout(&self, shards: u32) -> ShardLayout {
        let shards = shards.clamp(1, self.lanes);
        ShardLayout::new(shards, u64::from(self.lanes), self.frames_per_lane)
    }
}

/// A cross-shard effect, produced inside a worker and applied only by
/// the coordinator after the deterministic merge. These are the
/// *explicit message types* the shard seams are made of — worker
/// threads share no mutable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossShardMsg {
    /// The lane asks to lease `frames` spill frames from the global
    /// pool — the sharded analogue of a cross-shard `MigrateFrame`
    /// exchange (frames physically leave the coordinator's range and
    /// are accounted to the lane until released).
    Lease {
        /// Requesting lane.
        lane: u64,
        /// Frames requested.
        frames: u64,
    },
    /// The lane returns `frames` of its current lease to the pool.
    Release {
        /// Returning lane.
        lane: u64,
        /// Frames offered back.
        frames: u64,
    },
}

/// A lane's liveness at an epoch barrier, as reported to the
/// coordinator. Chaos-free, churn-free runs only ever report
/// [`LaneStatus::Active`], which the coordinator treats exactly as the
/// pre-chaos engine did — no extra trace bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneStatus {
    /// The lane ran its epoch normally (possibly after containing a
    /// chaos event — see [`LaneReport::incidents`]).
    Active,
    /// The lane has not arrived yet, or already departed.
    Idle,
    /// The lane is departing this epoch: the coordinator must reclaim
    /// its spill leases and settle its market account.
    Departing,
    /// The lane died and could not be failed over; the coordinator
    /// reclaims its leases and settles its account.
    Dead {
        /// Human-readable cause, folded into the trace.
        reason: String,
    },
}

/// One lane's epoch-barrier report to the coordinator.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// Reporting lane.
    pub lane: u64,
    /// The lane's virtual clock at the barrier.
    pub now: Timestamp,
    /// Frames the lane's SPCM currently has granted (demand signal).
    pub resident: u64,
    /// Faults the lane took this epoch.
    pub faults: u64,
    /// Cross-shard requests, stamped with the lane time they were made.
    pub msgs: Vec<(Timestamp, CrossShardMsg)>,
    /// The lane's liveness this epoch.
    pub status: LaneStatus,
    /// Contained chaos events and churn transitions this epoch, in
    /// occurrence order; empty on every chaos-free run.
    pub incidents: Vec<String>,
    /// Virtual time the lane consumed this epoch (µs). Worker-side
    /// observation; shard-count invariant because a lane's clock is.
    pub epoch_us: u64,
    /// The lane's resident frames per memory tier at the barrier.
    /// Computed only on economy runs; all-zero otherwise.
    pub resident_by_tier: [u64; MemTier::COUNT],
    /// Lane-local ledger balance at the barrier (tiered economy runs;
    /// 0 otherwise).
    pub local_balance: f64,
    /// Whether the lane-local ledger was in the red at the barrier
    /// (tiered economy runs; false otherwise).
    pub bankrupt: bool,
}

/// The coordinator's broadcast after an epoch barrier: the merged,
/// globally agreed state every lane resumes from.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// The epoch this plan closes.
    pub epoch: u32,
    /// Whether the market judged dram contended this epoch.
    pub contended: bool,
    /// Spill frames currently leased to each lane (indexed by lane).
    pub leases: Vec<u64>,
    /// Per-tier rents posted by the coordinator's price schedule for
    /// the next epoch (`None` outside economy runs). Workers install
    /// them on each live lane's local ledger before the next epoch.
    pub rents: Option<[f64; MemTier::COUNT]>,
}

/// Coordinator-side summary of one epoch, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSummary {
    /// Epoch index.
    pub epoch: u32,
    /// Global demand signal: resident frames plus epoch faults.
    pub demand: u64,
    /// Laned frame capacity the demand is judged against.
    pub capacity: u64,
    /// Whether billing ran contended.
    pub contended: bool,
    /// Spill frames still free after the epoch's exchanges.
    pub pool_free: u64,
    /// Spill frames leased out across all lanes after the epoch.
    pub leased: u64,
}

/// How a lane's run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneFate {
    /// Ran every epoch of its window to completion.
    Completed,
    /// Departed mid-run under churn; results are a departure snapshot.
    Departed,
    /// Its manager crashed at least once; the lane was failed over to
    /// the default manager and kept running.
    Crashed,
}

impl fmt::Display for LaneFate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LaneFate::Completed => "completed",
            LaneFate::Departed => "departed",
            LaneFate::Crashed => "crashed",
        })
    }
}

/// Final per-lane results.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneResult {
    /// The lane.
    pub lane: u64,
    /// Faults across all epochs (warm-up excluded).
    pub faults: u64,
    /// Manager invocations across the whole run.
    pub manager_calls: u64,
    /// Page frames migrated by the lane's kernel.
    pub pages_migrated: u64,
    /// Highest spill lease the lane held at any barrier.
    pub lease_peak: u64,
    /// The lane's final virtual time (µs).
    pub final_time_us: u64,
    /// The lane's final market balance (drams).
    pub balance: f64,
    /// How the lane's run ended.
    pub fate: LaneFate,
    /// Watchdog-driven manager failovers the lane's machine performed.
    pub failovers: u64,
    /// Voluntary demotions the lane's default manager performed down
    /// the tier ladder (tiered economy runs; 0 otherwise).
    pub demotions: u64,
    /// Hot-page promotions the lane's default manager performed up the
    /// tier ladder (tiered economy runs with a promotion budget; 0
    /// otherwise).
    pub promotions: u64,
    /// Revocation demands the lane's SPCM issued against bankrupt
    /// managers (tiered economy runs; 0 otherwise).
    pub revocations: u64,
    /// Frames the lane's SPCM seized by force after a revocation
    /// grace deadline expired unmet (tiered economy runs; 0 otherwise).
    pub seized: u64,
}

/// Everything one sharded run produced. Contains no trace of the worker
/// count that produced it: `run(cfg, 1)` and `run(cfg, n)` return equal
/// reports (pinned by `tests/shard_determinism.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunReport {
    /// Per-lane results, lane-ascending.
    pub lanes: Vec<LaneResult>,
    /// Per-epoch coordinator summaries.
    pub epochs: Vec<EpochSummary>,
    /// The merged global trace: every cross-shard exchange and billing
    /// decision, in deterministic `(time, seq)` order.
    pub trace: Vec<String>,
    /// Spill frames free at the end of the run.
    pub pool_free: u64,
    /// Whether the spill ledger conserved every frame (always expected).
    pub conserved: bool,
    /// The market ledger residual (expected ~0; conservation check).
    pub ledger_residual: f64,
    /// Manager failovers across all lanes (watchdog escalations plus
    /// crash containments).
    pub failovers: u64,
    /// Lanes whose manager crashed at least once.
    pub crashes: u64,
    /// Lanes that departed mid-run under churn.
    pub departures: u64,
    /// Release messages asking back more frames than the lane held;
    /// the pool clamps them, the coordinator counts and traces them.
    pub spill_over_releases: u64,
    /// The economy ledger — present exactly when the run was
    /// configured with [`ShardEngineConfig::economy`].
    pub economy: Option<EconomyLedger>,
}

/// Everything the economy layer observed across one sharded run: the
/// coordinator's rent trajectory, the utilization sequence that drove
/// it, per-(epoch, lane) samples, and the coordinator-ledger totals.
/// The `epcm-economy` crate aggregates this into per-income-class
/// outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyLedger {
    /// Rents posted after each epoch's utilization was observed
    /// (epoch-indexed; entry `e` governs epoch `e + 1`).
    pub rents: Vec<[f64; MemTier::COUNT]>,
    /// DRAM utilization fed to the schedule each epoch, in milli-units
    /// (`1000 · demand / capacity`, integer arithmetic).
    pub util_milli: Vec<u64>,
    /// Per-epoch samples of every *active* lane, epoch-major and
    /// lane-ascending within an epoch.
    pub samples: Vec<LaneEpochSample>,
    /// Coordinator-ledger income total at the end of the run.
    pub total_income: f64,
    /// Coordinator-ledger charge total at the end of the run.
    pub total_charged: f64,
    /// Coordinator-ledger conservation residual (see
    /// [`MemoryMarket::ledger_residual`]).
    pub residual: f64,
    /// The documented f64 bound the residual must stay within (see
    /// [`MemoryMarket::residual_bound`]); economy runs assert it.
    pub residual_bound: f64,
}

/// One active lane's economy observation at one epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneEpochSample {
    /// The epoch.
    pub epoch: u32,
    /// The lane.
    pub lane: u64,
    /// Virtual time the lane consumed this epoch (µs) — the per-class
    /// latency histograms are built from these.
    pub epoch_us: u64,
    /// The lane's resident frames per memory tier at the barrier.
    pub resident_by_tier: [u64; MemTier::COUNT],
    /// The lane's ledger balance: lane-local in tiered mode, the
    /// coordinator account otherwise.
    pub balance: f64,
    /// Whether that ledger was in the red at the barrier.
    pub bankrupt: bool,
}

/// Why a sharded run could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardEngineError {
    /// A worker thread panicked outside per-lane containment.
    WorkerPanicked {
        /// The shard whose worker died.
        shard: u32,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for ShardEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardEngineError::WorkerPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ShardEngineError {}

/// The spill-frame ledger: the coordinator-owned frame range leased out
/// across shard boundaries. Every frame is either free or leased to
/// exactly one lane; [`SpillPool::conserved`] verifies the partition.
/// Grants hand out the lowest-numbered free frames and releases return
/// a lane's highest-numbered frames first, so the ledger state is a
/// pure function of the (merged, deterministic) request order.
#[derive(Debug, Clone)]
pub struct SpillPool {
    range: Range<u64>,
    free: BTreeSet<u64>,
    leased: BTreeMap<u64, BTreeSet<u64>>,
}

impl SpillPool {
    /// A pool owning the global frame ids in `range`, all free.
    pub fn new(range: Range<u64>) -> SpillPool {
        SpillPool {
            free: range.clone().collect(),
            leased: BTreeMap::new(),
            range,
        }
    }

    /// Total frames the pool is responsible for.
    pub fn total(&self) -> u64 {
        self.range.end - self.range.start
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free.len() as u64
    }

    /// Frames currently leased to `lane`.
    pub fn leased_to(&self, lane: u64) -> u64 {
        self.leased.get(&lane).map_or(0, |s| s.len() as u64)
    }

    /// Leases up to `want` frames to `lane` (lowest free ids first);
    /// returns how many were actually granted.
    pub fn grant(&mut self, lane: u64, want: u64) -> u64 {
        let mut granted = 0;
        for _ in 0..want {
            let Some(&frame) = self.free.iter().next() else {
                break;
            };
            self.free.remove(&frame);
            self.leased.entry(lane).or_default().insert(frame);
            granted += 1;
        }
        granted
    }

    /// Returns up to `count` of `lane`'s frames to the pool (highest
    /// leased ids first); returns how many came back.
    pub fn release(&mut self, lane: u64, count: u64) -> u64 {
        let Some(set) = self.leased.get_mut(&lane) else {
            return 0;
        };
        let mut returned = 0;
        for _ in 0..count {
            let Some(&frame) = set.iter().next_back() else {
                break;
            };
            set.remove(&frame);
            self.free.insert(frame);
            returned += 1;
        }
        if set.is_empty() {
            self.leased.remove(&lane);
        }
        returned
    }

    /// Returns *all* of `lane`'s frames to the pool (bankruptcy seize).
    pub fn release_all(&mut self, lane: u64) -> u64 {
        self.release(lane, self.leased_to(lane))
    }

    /// Frame conservation: every frame of the pool's range is in
    /// exactly one place — the free set or one lane's lease — and no
    /// frame from outside the range ever appears.
    pub fn conserved(&self) -> bool {
        let mut seen = BTreeSet::new();
        for &f in &self.free {
            if !self.range.contains(&f) || !seen.insert(f) {
                return false;
            }
        }
        for set in self.leased.values() {
            for &f in set {
                if !self.range.contains(&f) || !seen.insert(f) {
                    return false;
                }
            }
        }
        seen.len() as u64 == self.total()
    }
}

/// Plans each tenant's accesses. Implementations must be deterministic
/// functions of their arguments: the plan may depend on the lane, the
/// epoch, and the lane's current spill lease, but never on the worker
/// grouping — that is what keeps the run shard-count invariant. `Sync`
/// because one instance is shared by every worker thread.
pub trait TenantWorkload: Sync {
    /// One round of `(page, kind)` accesses over a `pages`-page
    /// segment for `lane`, given its currently leased spill frames.
    fn round(
        &self,
        lane: u64,
        epoch: u32,
        round: u32,
        pages: u64,
        leased: u64,
    ) -> Vec<(u64, AccessKind)>;
}

/// The built-in hot/cold tenant workload: a re-referenced hot set
/// followed by a cold write scan whose length shrinks as the lane's
/// spill lease grows (leased frames absorb cold pages), closing the
/// feedback loop between the economy and the fault rate.
#[derive(Debug, Clone, Default)]
pub struct DefaultTenantWorkload {
    /// Mixed into the per-lane generator seed.
    pub seed: u64,
}

impl TenantWorkload for DefaultTenantWorkload {
    fn round(
        &self,
        lane: u64,
        epoch: u32,
        round: u32,
        pages: u64,
        leased: u64,
    ) -> Vec<(u64, AccessKind)> {
        let mut rng = Rng::seed_from(
            self.seed
                ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (u64::from(epoch) << 32)
                ^ u64::from(round),
        );
        let hot = (pages / 3).max(4).min(pages);
        let mut plan: Vec<(u64, AccessKind)> = (0..hot).map(|p| (p, AccessKind::Read)).collect();
        let cold_span = pages - hot;
        let cold_len = cold_span.saturating_sub(leased * 2);
        for i in 0..cold_len {
            let p = hot + (i * 7 + rng.below(3)) % cold_span.max(1);
            plan.push((p, AccessKind::Write));
        }
        plan
    }
}

/// One worker's epoch-barrier submission: its lanes' reports, in lane
/// order — or a structured failure with shard context, so an engine
/// bug aborts the run with a [`ShardEngineError`] instead of a bare
/// thread panic.
enum FromWorker {
    Reports {
        shard: ShardId,
        reports: Vec<LaneReport>,
    },
    Failed {
        shard: ShardId,
        message: String,
    },
}

/// One worker's final submission after the last epoch.
enum WorkerDone {
    Results {
        shard: ShardId,
        results: Vec<LaneResult>,
    },
    Failed {
        shard: ShardId,
        message: String,
    },
}

/// A tenant lane owned by a worker: a whole machine plus lane state.
struct Tenant {
    lane: u64,
    machine: Machine,
    seg: epcm_core::types::SegmentId,
    /// The lane's [`ChaoticManager`], when chaos is armed; cleared once
    /// the manager is failed over so later injections are skipped.
    chaos_id: Option<ManagerId>,
    leased: u64,
    lease_peak: u64,
    faults: u64,
    base_faults: u64,
    crashed: bool,
    failovers_seen: u64,
    /// Lane-local market accounts (tiered economy runs): the default
    /// manager's, plus the chaotic manager's when chaos is armed.
    local_accounts: Vec<ManagerId>,
}

/// A lane slot as the worker sees it across churn: the tenant machine
/// exists only inside the lane's `[arrive, depart)` window; a departed
/// lane keeps its snapshot result.
struct LaneSlot {
    lane: u64,
    arrive: u32,
    depart: u32,
    tenant: Option<Tenant>,
    done: Option<LaneResult>,
}

fn total_faults(m: &Machine) -> u64 {
    let k = m.kernel_stats();
    k.faults_missing + k.faults_protection + k.faults_cow
}

fn build_tenant(cfg: &ShardEngineConfig, lane: u64) -> Tenant {
    let eco = cfg.economy.as_ref();
    let mut builder = Machine::builder(cfg.frames_per_lane as usize);
    // Tiered economy: the lane machine carries the paper's per-machine
    // SPCM economy — a tier ladder plus a lane-local market ledger
    // enforcing admission (affordability), demotion (manager in the
    // red) and revocation (bankruptcy) locally, at tick granularity.
    if let Some(layout) = eco.and_then(|e| e.tiers) {
        assert_eq!(
            layout.total(),
            cfg.frames_per_lane,
            "economy tier layout must cover exactly the lane's frames"
        );
        builder = builder.tiers(layout).allocation(AllocationPolicy::Market {
            market: MemoryMarket::new(eco.expect("tiers imply economy").market.clone()),
            horizon: eco.expect("tiers imply economy").horizon,
        });
    }
    let mut machine = builder.build();
    let manager = match eco.filter(|e| e.tiered() && e.promotion_budget > 0) {
        Some(e) => DefaultSegmentManager::with_config(
            ManagerMode::Server,
            DefaultManagerConfig {
                promotion_budget: e.promotion_budget,
                promotion_threshold: e.promotion_threshold,
                ..DefaultManagerConfig::default()
            },
        ),
        None => DefaultSegmentManager::server(),
    };
    let id = machine.register_manager(Box::new(manager));
    machine.set_default_manager(id);
    // Under chaos the tenant's segment is owned by a ChaoticManager and
    // the kernel arms the upcall watchdog, with a short revocation
    // grace so byzantine replies escalate within the epoch. The default
    // manager above stays clean: it is the failover heir.
    let chaos_id = if cfg.chaos.is_some() {
        let costs = CostModel::decstation_5000_200();
        machine.enable_watchdog(WatchdogConfig::from_costs(&costs));
        machine.spcm_mut().set_revocation_config(RevocationConfig {
            grace: Micros::from_millis(2),
            ..RevocationConfig::default()
        });
        Some(machine.register_manager(Box::new(ChaoticManager::server(lane))))
    } else {
        None
    };
    // The Market admission policy refuses managers without accounts and
    // defers the broke, so in tiered mode the local accounts must exist
    // — opened at the lane's class income, primed with the posted base
    // rents and the arrival stake — before the first warm-up touch.
    let mut local_accounts = Vec::new();
    if let Some(eco) = eco.filter(|e| e.tiered()) {
        let income = eco.incomes[lane as usize];
        let rents = eco.schedule.prices();
        if let Some(market) = machine.spcm_mut().market_mut() {
            market.set_tier_rents(rents);
            market.open_account(id, Some(income));
            market.credit(id, income * eco.stake_secs);
            local_accounts.push(id);
            if let Some(cid) = chaos_id {
                market.open_account(cid, Some(income));
                market.credit(cid, income * eco.stake_secs);
                local_accounts.push(cid);
            }
        }
    }
    let seg = match chaos_id {
        Some(cid) => machine
            .create_segment_with(
                SegmentKind::Anonymous,
                cfg.pages_per_lane,
                cid,
                UserId::SYSTEM,
            )
            .expect("tenant segment"),
        None => machine
            .create_segment(SegmentKind::Anonymous, cfg.pages_per_lane)
            .expect("tenant segment"),
    };
    for p in 0..cfg.pages_per_lane {
        machine
            .touch(seg, p, AccessKind::Write)
            .expect("tenant warm-up write");
    }
    let _ = machine.tick();
    let base_faults = total_faults(&machine);
    Tenant {
        lane,
        machine,
        seg,
        chaos_id,
        leased: 0,
        lease_peak: 0,
        faults: 0,
        base_faults,
        crashed: false,
        failovers_seen: 0,
        local_accounts,
    }
}

/// The sum of a tenant's lane-local ledger balances (tiered economy
/// runs; 0.0 when the machine runs no local market).
fn local_balance(t: &Tenant) -> f64 {
    let Some(market) = t.machine.spcm().market() else {
        return 0.0;
    };
    t.local_accounts
        .iter()
        .filter_map(|&id| market.balance(id))
        .sum()
}

fn lane_result(cfg: &ShardEngineConfig, t: &Tenant, fate: LaneFate) -> LaneResult {
    let tiered = cfg.economy.as_ref().is_some_and(|e| e.tiered());
    let (demotions, promotions, revocations, seized, balance) = if tiered {
        let (demotions, promotions) = t
            .local_accounts
            .first()
            .and_then(|&id| t.machine.manager(id))
            .and_then(|mgr| mgr.as_any().downcast_ref::<DefaultSegmentManager>())
            .map_or((0, 0), |mgr| {
                let s = mgr.manager_stats();
                (s.demotions, s.promotions)
            });
        let (demands, frames_seized, _, _) = t.machine.spcm().revocation_stats();
        (
            demotions,
            promotions,
            demands,
            frames_seized,
            local_balance(t),
        )
    } else {
        // The market lives on the coordinator; balance filled in there.
        (0, 0, 0, 0, 0.0)
    };
    LaneResult {
        lane: t.lane,
        faults: t.faults,
        manager_calls: t.machine.stats().manager_calls,
        pages_migrated: t.machine.kernel_stats().pages_migrated,
        lease_peak: t.lease_peak,
        final_time_us: t.machine.now().as_micros(),
        balance,
        fate,
        failovers: t.failovers_seen,
        demotions,
        promotions,
        revocations,
        seized,
    }
}

/// Renders a caught panic payload (strings only; anything else is
/// summarized).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one tenant through one epoch: inject any scheduled chaos,
/// contain an injected crash (failing the lane over to its default
/// manager), and audit a byzantine epoch with an explicit revocation.
/// Returns the lane's barrier report.
fn run_tenant_epoch(
    cfg: &ShardEngineConfig,
    workload: &dyn TenantWorkload,
    t: &mut Tenant,
    epoch: u32,
    mut incidents: Vec<String>,
) -> LaneReport {
    let t0 = t.machine.now();
    let before = total_faults(&t.machine);
    let mut byzantine = false;
    if let Some(plan) = &cfg.chaos {
        if let Some(event) = plan.roll(t.lane, epoch) {
            if let Some(cid) = t.chaos_id {
                let injected = t
                    .machine
                    .with_manager(cid, |m, _| {
                        if let Some(c) = m.as_any_mut().downcast_mut::<ChaoticManager>() {
                            c.inject(event);
                        }
                        Ok(())
                    })
                    .is_ok();
                if injected {
                    byzantine = matches!(event, ChaosEvent::Byzantine);
                    incidents.push(format!("chaos injected: {event}"));
                }
            }
        }
    }
    let contained = catch_unwind(AssertUnwindSafe(|| {
        for round in 0..cfg.rounds_per_epoch {
            for (page, kind) in workload.round(t.lane, epoch, round, cfg.pages_per_lane, t.leased) {
                if cfg.economy.is_some() {
                    // Economy runs: bankruptcy can revoke a tenant down
                    // to zero frames, where no fault can be served.
                    // That is starvation, not an engine bug — the lane
                    // stalls for the rest of the epoch while income
                    // accrues toward re-admission.
                    if t.machine.touch(t.seg, page, kind).is_err() {
                        return true;
                    }
                } else {
                    t.machine
                        .touch(t.seg, page, kind)
                        .expect("tenant epoch access");
                }
            }
            let _ = t.machine.tick();
        }
        false
    }));
    if let Ok(true) = contained {
        // Bill the stalled remainder of the epoch so the ladder keeps
        // moving: income accrues, and a recovered balance re-admits the
        // lane next epoch.
        let _ = t.machine.tick();
        incidents.push("starved: no frames until balance recovers".to_string());
    }
    if let Err(payload) = contained {
        if cfg.chaos.is_none() {
            // Without injected chaos a panic here is an engine bug;
            // surface it to the worker frame (and try_run's error path)
            // instead of silently swallowing it.
            std::panic::resume_unwind(payload);
        }
        t.crashed = true;
        incidents.push(format!(
            "crash contained: {}",
            panic_message(payload.as_ref())
        ));
        if let Some(cid) = t.chaos_id.take() {
            match t.machine.fail_over(cid) {
                Ok(Some(heir)) => incidents.push(format!("failed over to manager {}", heir.0)),
                Ok(None) => incidents.push("no heir; manager destroyed".to_string()),
                Err(e) => incidents.push(format!("failover failed: {e}")),
            }
            t.failovers_seen = t.machine.watchdog().map_or(0, |d| d.failovers());
        }
    } else if byzantine {
        if let Some(cid) = t.chaos_id {
            // Audit the lying manager: a polite revocation whose reply
            // the kernel checks against the grant ledger.
            let _ = t.machine.revoke(cid, 1 + t.lane % 2);
            incidents.push("byzantine reclaim audited".to_string());
        }
    }
    // Deadline misses escalate inside the machine; notice when the
    // ladder failed the chaotic manager over so we stop injecting.
    let failovers = t.machine.watchdog().map_or(0, |d| d.failovers());
    if failovers > t.failovers_seen {
        incidents.push(format!("watchdog failover #{failovers}"));
        t.failovers_seen = failovers;
        t.chaos_id = None;
    }
    let faults = total_faults(&t.machine) - before;
    t.faults = total_faults(&t.machine) - t.base_faults;
    let resident: u64 = t
        .machine
        .spcm()
        .holdings()
        .iter()
        .map(|&(_, frames)| frames)
        .sum();
    let now = t.machine.now();
    // Cross-shard policy: under fault pressure ask the coordinator for
    // spill frames; once pressure subsides, return half the lease per
    // epoch.
    let mut msgs = Vec::new();
    if faults > cfg.frames_per_lane / 2 {
        msgs.push((
            now,
            CrossShardMsg::Lease {
                lane: t.lane,
                frames: 1 + t.lane % 3,
            },
        ));
    } else if t.leased > 0 {
        msgs.push((
            now,
            CrossShardMsg::Release {
                lane: t.lane,
                frames: t.leased.div_ceil(2),
            },
        ));
    }
    if byzantine {
        // A byzantine epoch also over-releases: asks the pool for more
        // frames back than the lane holds, pinning the clamped
        // `spill_over_release` path on the coordinator.
        msgs.push((
            now,
            CrossShardMsg::Release {
                lane: t.lane,
                frames: t.leased + 2,
            },
        ));
    }
    let eco = cfg.economy.as_ref();
    let resident_by_tier = match eco {
        Some(_) => t.machine.resident_by_tier(),
        None => [0; MemTier::COUNT],
    };
    let (balance, bankrupt) = if eco.is_some_and(|e| e.tiered()) {
        let b = local_balance(t);
        (b, b < 0.0)
    } else {
        (0.0, false)
    };
    LaneReport {
        lane: t.lane,
        now,
        resident,
        faults,
        msgs,
        status: LaneStatus::Active,
        incidents,
        epoch_us: now.as_micros() - t0.as_micros(),
        resident_by_tier,
        local_balance: balance,
        bankrupt,
    }
}

/// The per-shard worker body: advance each owned lane through one epoch,
/// report at the barrier, apply the coordinator's plan, repeat. Channel
/// failures mean the coordinator is gone (another worker failed); the
/// worker just unwinds its lanes and returns.
fn worker_loop(
    cfg: &ShardEngineConfig,
    layout: ShardLayout,
    shard: ShardId,
    workload: &dyn TenantWorkload,
    plans: &mpsc::Receiver<EpochPlan>,
    reports: &mpsc::Sender<FromWorker>,
    done: &mpsc::Sender<WorkerDone>,
) {
    let mut slots: Vec<LaneSlot> = layout
        .lane_range(shard)
        .map(|lane| {
            let (arrive, depart) = cfg.churn_window(lane);
            LaneSlot {
                lane,
                arrive,
                depart,
                tenant: None,
                done: None,
            }
        })
        .collect();
    // The rents the coordinator most recently posted: applied to every
    // live lane when a plan arrives, and to a mid-run arrival the moment
    // it is built (it must not run an epoch at stale base rents).
    let mut last_rents: Option<[f64; MemTier::COUNT]> = None;
    for epoch in 0..cfg.epochs {
        let mut epoch_reports = Vec::with_capacity(slots.len());
        for slot in &mut slots {
            let mut incidents = Vec::new();
            if epoch == slot.arrive && slot.tenant.is_none() && slot.done.is_none() {
                let mut tenant = build_tenant(cfg, slot.lane);
                if let Some(rents) = last_rents {
                    tenant.machine.apply_tier_rents(epoch, rents);
                }
                slot.tenant = Some(tenant);
                if cfg.churn {
                    incidents.push(format!("arrived (window {}..{})", slot.arrive, slot.depart));
                }
            }
            if epoch >= slot.depart {
                if let Some(t) = slot.tenant.take() {
                    let fate = if t.crashed {
                        LaneFate::Crashed
                    } else {
                        LaneFate::Departed
                    };
                    slot.done = Some(lane_result(cfg, &t, fate));
                    incidents.push("departed".to_string());
                    epoch_reports.push(LaneReport {
                        lane: slot.lane,
                        now: t.machine.now(),
                        resident: 0,
                        faults: 0,
                        msgs: Vec::new(),
                        status: LaneStatus::Departing,
                        incidents,
                        epoch_us: 0,
                        resident_by_tier: [0; MemTier::COUNT],
                        local_balance: 0.0,
                        bankrupt: false,
                    });
                    continue;
                }
            }
            match slot.tenant.as_mut() {
                Some(t) => {
                    epoch_reports.push(run_tenant_epoch(cfg, workload, t, epoch, incidents));
                }
                None => epoch_reports.push(LaneReport {
                    lane: slot.lane,
                    now: Timestamp::ZERO,
                    resident: 0,
                    faults: 0,
                    msgs: Vec::new(),
                    status: LaneStatus::Idle,
                    incidents,
                    epoch_us: 0,
                    resident_by_tier: [0; MemTier::COUNT],
                    local_balance: 0.0,
                    bankrupt: false,
                }),
            }
        }
        if reports
            .send(FromWorker::Reports {
                shard,
                reports: epoch_reports,
            })
            .is_err()
        {
            return;
        }
        let Ok(plan) = plans.recv() else {
            return;
        };
        if plan.rents.is_some() {
            last_rents = plan.rents;
        }
        for slot in &mut slots {
            if let Some(t) = slot.tenant.as_mut() {
                t.leased = plan.leases[t.lane as usize];
                t.lease_peak = t.lease_peak.max(t.leased);
                if let Some(rents) = plan.rents {
                    t.machine.apply_tier_rents(plan.epoch, rents);
                }
            }
        }
    }
    let results = slots
        .iter()
        .map(|slot| match (&slot.tenant, &slot.done) {
            (Some(t), _) => {
                let fate = if t.crashed {
                    LaneFate::Crashed
                } else {
                    LaneFate::Completed
                };
                lane_result(cfg, t, fate)
            }
            (None, Some(r)) => r.clone(),
            (None, None) => LaneResult {
                lane: slot.lane,
                faults: 0,
                manager_calls: 0,
                pages_migrated: 0,
                lease_peak: 0,
                final_time_us: 0,
                balance: 0.0,
                fate: LaneFate::Departed,
                failovers: 0,
                demotions: 0,
                promotions: 0,
                revocations: 0,
                seized: 0,
            },
        })
        .collect();
    let _ = done.send(WorkerDone::Results { shard, results });
}

/// Market configuration of the shard economy: charges high enough that
/// epoch-scale holdings move balances visibly, income spread per lane so
/// every balance is distinct.
fn shard_market(lanes: u32) -> MemoryMarket {
    let config = MarketConfig {
        charge_per_mb_sec: 200.0,
        io_charge_per_block: 0.05,
        ..MarketConfig::default()
    };
    let mut market = MemoryMarket::new(config);
    for lane in 0..lanes {
        market.open_account(ManagerId(lane), Some(20.0 + 3.0 * f64::from(lane)));
    }
    market
}

/// Runs the sharded engine with the built-in workload.
pub fn run(cfg: &ShardEngineConfig, shards: u32) -> ShardRunReport {
    run_with(cfg, shards, &DefaultTenantWorkload { seed: cfg.seed })
}

/// Fallible variant of [`run`].
///
/// # Errors
///
/// [`ShardEngineError::WorkerPanicked`] when a worker dies outside
/// per-lane containment.
pub fn try_run(cfg: &ShardEngineConfig, shards: u32) -> Result<ShardRunReport, ShardEngineError> {
    try_run_with(cfg, shards, &DefaultTenantWorkload { seed: cfg.seed })
}

/// Runs the sharded engine: one worker thread per (non-empty) shard,
/// bulk-synchronous epochs, deterministic cross-shard merge. The report
/// is byte-identical for every `shards` value.
///
/// # Panics
///
/// Panics (with shard context) if a worker dies outside per-lane
/// containment; use [`try_run_with`] to handle that as an error.
pub fn run_with(
    cfg: &ShardEngineConfig,
    shards: u32,
    workload: &dyn TenantWorkload,
) -> ShardRunReport {
    match try_run_with(cfg, shards, workload) {
        Ok(report) => report,
        Err(e) => panic!("sharded run failed: {e}"),
    }
}

/// The fallible engine entry point: like [`run_with`], but a worker
/// panic outside per-lane containment surfaces as a structured
/// [`ShardEngineError`] carrying the shard and panic message instead of
/// aborting the caller through a bare `join` panic.
///
/// # Errors
///
/// [`ShardEngineError::WorkerPanicked`] when a worker dies.
pub fn try_run_with(
    cfg: &ShardEngineConfig,
    shards: u32,
    workload: &dyn TenantWorkload,
) -> Result<ShardRunReport, ShardEngineError> {
    assert!(cfg.lanes > 0, "the engine needs at least one lane");
    let layout = cfg.layout(shards);
    let shard_count = layout.shards();
    let lanes = cfg.lanes as usize;
    let spill_base = layout.total_frames();
    let mut pool = SpillPool::new(spill_base..spill_base + cfg.spill_frames);
    let eco = cfg.economy.as_ref();
    let tiered = eco.is_some_and(|e| e.tiered());
    // The coordinator ledger: on economy runs accounts open lazily at
    // each lane's arrival epoch (heterogeneous incomes); otherwise the
    // pre-economy static market, byte for byte.
    let mut market = match eco {
        Some(eco) => {
            assert_eq!(
                eco.incomes.len(),
                lanes,
                "economy incomes must cover every lane"
            );
            let mut market = MemoryMarket::new(eco.market.clone());
            market.set_tier_rents(eco.schedule.prices());
            market
        }
        None => shard_market(cfg.lanes),
    };
    let mut schedule = eco.map(|e| e.schedule.clone());
    let mut rents_hist: Vec<[f64; MemTier::COUNT]> = Vec::new();
    let mut util_hist: Vec<u64> = Vec::new();
    let mut samples: Vec<LaneEpochSample> = Vec::new();
    let mut trace: Vec<String> = Vec::new();
    let mut epochs: Vec<EpochSummary> = Vec::new();
    let mut results: Vec<Option<LaneResult>> = vec![None; lanes];
    let mut leases = vec![0u64; lanes];
    let mut departures = 0u64;
    let mut spill_over_releases = 0u64;

    thread::scope(|scope| -> Result<(), ShardEngineError> {
        let (report_tx, report_rx) = mpsc::channel::<FromWorker>();
        let (done_tx, done_rx) = mpsc::channel::<WorkerDone>();
        let mut plan_txs = Vec::with_capacity(shard_count as usize);
        for s in 0..shard_count {
            let (plan_tx, plan_rx) = mpsc::channel::<EpochPlan>();
            plan_txs.push(plan_tx);
            let report_tx = report_tx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                // Contain the whole worker: anything that escapes the
                // per-lane containment is reported as a structured
                // failure with shard context, never a bare join abort.
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    worker_loop(
                        cfg,
                        layout,
                        ShardId(s),
                        workload,
                        &plan_rx,
                        &report_tx,
                        &done_tx,
                    );
                }));
                if let Err(payload) = caught {
                    let message = panic_message(payload.as_ref());
                    let _ = report_tx.send(FromWorker::Failed {
                        shard: ShardId(s),
                        message: message.clone(),
                    });
                    let _ = done_tx.send(WorkerDone::Failed {
                        shard: ShardId(s),
                        message,
                    });
                }
            });
        }
        drop(report_tx);
        drop(done_tx);

        for epoch in 0..cfg.epochs {
            // Barrier: wait for every shard, index by shard id (arrival
            // order is scheduling noise and must not matter).
            let mut per_shard: Vec<Option<Vec<LaneReport>>> = vec![None; shard_count as usize];
            for _ in 0..shard_count {
                match report_rx.recv() {
                    Ok(FromWorker::Reports { shard, reports }) => {
                        per_shard[shard.index()] = Some(reports);
                    }
                    Ok(FromWorker::Failed { shard, message }) => {
                        return Err(ShardEngineError::WorkerPanicked {
                            shard: shard.0,
                            message,
                        });
                    }
                    Err(_) => {
                        return Err(ShardEngineError::WorkerPanicked {
                            shard: u32::MAX,
                            message: "a worker exited without reporting".to_string(),
                        });
                    }
                }
            }
            // Shards hold contiguous ascending lane runs, so shard-order
            // concatenation is lane-ascending — the grouping-invariant
            // insertion order the (time, seq) merge depends on.
            let reports: Vec<LaneReport> = per_shard
                .into_iter()
                .map(|r| r.expect("every shard reported"))
                .reduce(|mut acc, mut next| {
                    acc.append(&mut next);
                    acc
                })
                .unwrap_or_default();
            debug_assert!(reports.iter().enumerate().all(|(i, r)| r.lane == i as u64));

            // Economy: lanes join the coordinator ledger at their
            // arrival epoch — the account must exist (income set, stake
            // credited) before this epoch's I/O charges and billing land
            // on it. Lane-ascending, so the open/credit order is
            // grouping-invariant.
            if let Some(eco) = eco {
                for r in &reports {
                    if cfg.churn_window(r.lane).0 == epoch {
                        let mgr = ManagerId(r.lane as u32);
                        let income = eco.incomes[r.lane as usize];
                        market.open_account(mgr, Some(income));
                        market.credit(mgr, income * eco.stake_secs);
                    }
                }
            }

            // Merge the cross-shard messages into one global order.
            let mut queue = ShardedEventQueue::new(shard_count as usize);
            for r in &reports {
                for (time, msg) in &r.msgs {
                    queue.schedule(layout.shard_of_lane(r.lane).index(), *time, msg.clone());
                }
            }
            while let Some((_, time, msg)) = queue.next_merged() {
                match msg {
                    CrossShardMsg::Lease { lane, frames } => {
                        let granted = pool.grant(lane, frames);
                        leases[lane as usize] += granted;
                        // Each exchanged frame pays the market's I/O
                        // charge: the serialization point bills in
                        // merged order.
                        market.charge_io(ManagerId(lane as u32), granted);
                        trace.push(format!(
                            "[{:>8}us] lane {:>2} lease +{granted}/{frames} pool={}",
                            time.as_micros(),
                            lane,
                            pool.free_frames()
                        ));
                    }
                    CrossShardMsg::Release { lane, frames } => {
                        let returned = pool.release(lane, frames);
                        leases[lane as usize] -= returned;
                        trace.push(format!(
                            "[{:>8}us] lane {:>2} release -{returned} pool={}",
                            time.as_micros(),
                            lane,
                            pool.free_frames()
                        ));
                        if returned < frames {
                            // The pool clamped an over-release: the lane
                            // offered back frames it never held. Count
                            // and trace it; conservation is untouched.
                            spill_over_releases += 1;
                            trace.push(format!(
                                "[{:>8}us] lane {:>2} spill_over_release want={frames} held={returned}",
                                time.as_micros(),
                                lane
                            ));
                        }
                    }
                }
            }

            // Lane incidents and liveness transitions, in lane order.
            // Chaos-free, churn-free runs report only Active statuses
            // with empty incident lists, so this adds no trace bytes.
            for r in &reports {
                for incident in &r.incidents {
                    trace.push(format!(
                        "[{:>8}us] lane {:>2} {incident}",
                        r.now.as_micros(),
                        r.lane
                    ));
                }
                match &r.status {
                    LaneStatus::Active | LaneStatus::Idle => {}
                    LaneStatus::Departing | LaneStatus::Dead { .. } => {
                        let seized = pool.release_all(r.lane);
                        leases[r.lane as usize] = 0;
                        let settled = market
                            .settle_account(ManagerId(r.lane as u32))
                            .unwrap_or(0.0);
                        departures += 1;
                        let cause = match &r.status {
                            LaneStatus::Dead { reason } => format!("dead ({reason})"),
                            _ => "departed".to_string(),
                        };
                        trace.push(format!(
                            "[{:>8}us] lane {:>2} {cause}: leases -{seized} settled {settled:.2} drams",
                            r.now.as_micros(),
                            r.lane
                        ));
                    }
                }
            }

            // Global billing at the barrier: one market, lane order.
            let barrier = reports
                .iter()
                .map(|r| r.now)
                .max()
                .expect("at least one lane");
            let demand: u64 = reports.iter().map(|r| r.resident + r.faults).sum();
            let capacity = layout.total_frames();
            let contended = demand > capacity;
            let holdings: Vec<(ManagerId, u64)> = reports
                .iter()
                .map(|r| {
                    (
                        ManagerId(r.lane as u32),
                        r.resident + leases[r.lane as usize],
                    )
                })
                .collect();
            let bankrupt = if tiered {
                // Tiered billing: each lane's barrier holdings priced
                // per tier at the posted rents; spill leases are DRAM.
                let by_tier: Vec<(ManagerId, [u64; MemTier::COUNT])> = reports
                    .iter()
                    .map(|r| {
                        let mut frames = r.resident_by_tier;
                        frames[MemTier::Dram.index()] += leases[r.lane as usize];
                        (ManagerId(r.lane as u32), frames)
                    })
                    .collect();
                market.bill_tiered_traced(barrier, &by_tier, contended, None)
            } else {
                market.bill(barrier, &holdings, contended)
            };
            for mgr in &bankrupt {
                let lane = u64::from(mgr.0);
                let seized = pool.release_all(lane);
                if seized > 0 {
                    leases[lane as usize] = 0;
                    trace.push(format!(
                        "[{:>8}us] lane {:>2} bankrupt: seized {seized} spill frames",
                        barrier.as_micros(),
                        lane
                    ));
                }
            }
            let leased_total: u64 = leases.iter().sum();
            trace.push(format!(
                "[{:>8}us] epoch {epoch}: demand={demand}/{capacity} contended={contended} \
                 leased={leased_total} pool={}",
                barrier.as_micros(),
                pool.free_frames()
            ));
            epochs.push(EpochSummary {
                epoch,
                demand,
                capacity,
                contended,
                pool_free: pool.free_frames(),
                leased: leased_total,
            });

            // Price discovery: fold the epoch's integer DRAM utilization
            // into the schedule, post the updated rents on the
            // coordinator ledger and broadcast them in the plan. Pure
            // integer → f64 pipeline, so the trajectory is a function of
            // (seed, epoch, utilization) alone — never of the grouping.
            let mut plan_rents = None;
            if let Some(sched) = schedule.as_mut() {
                let util_milli = demand.saturating_mul(1000) / capacity.max(1);
                let new_rents = sched.observe(util_milli);
                market.set_tier_rents(new_rents);
                // Deliberately no trace line: the economy writes only to
                // `report.economy`, so a neutral economy run (flat
                // schedule, matching incomes) equals a plain run on
                // every other field — pinned by tests.
                rents_hist.push(new_rents);
                util_hist.push(util_milli);
                for r in &reports {
                    if r.status == LaneStatus::Active {
                        let balance = if tiered {
                            r.local_balance
                        } else {
                            market.balance(ManagerId(r.lane as u32)).unwrap_or(0.0)
                        };
                        samples.push(LaneEpochSample {
                            epoch,
                            lane: r.lane,
                            epoch_us: r.epoch_us,
                            resident_by_tier: r.resident_by_tier,
                            balance,
                            bankrupt: if tiered { r.bankrupt } else { balance < 0.0 },
                        });
                    }
                }
                plan_rents = Some(new_rents);
            }

            let plan = EpochPlan {
                epoch,
                contended,
                leases: leases.clone(),
                rents: plan_rents,
            };
            for plan_tx in &plan_txs {
                // A send to a failed worker's closed channel is fine:
                // its Failed report surfaces on the next barrier.
                let _ = plan_tx.send(plan.clone());
            }
        }

        let mut finished = vec![false; shard_count as usize];
        for _ in 0..shard_count {
            match done_rx.recv() {
                Ok(WorkerDone::Results {
                    shard,
                    results: lane_results,
                }) => {
                    assert!(
                        !std::mem::replace(&mut finished[shard.index()], true),
                        "{shard} finished twice"
                    );
                    for r in lane_results {
                        let lane = r.lane as usize;
                        results[lane] = Some(r);
                    }
                }
                Ok(WorkerDone::Failed { shard, message }) => {
                    return Err(ShardEngineError::WorkerPanicked {
                        shard: shard.0,
                        message,
                    });
                }
                Err(_) => {
                    return Err(ShardEngineError::WorkerPanicked {
                        shard: u32::MAX,
                        message: "a worker exited without finishing".to_string(),
                    });
                }
            }
        }
        Ok(())
    })?;

    let lanes: Vec<LaneResult> = results
        .into_iter()
        .map(|r| {
            let mut r = r.expect("every lane produced a result");
            // Tiered economy: the worker already filled the lane-local
            // ledger balance; the coordinator ledger is reported through
            // the EconomyLedger totals instead.
            if !tiered {
                r.balance = market
                    .balance(ManagerId(r.lane as u32))
                    .expect("every lane has an account");
            }
            r
        })
        .collect();
    let failovers = lanes.iter().map(|l| l.failovers).sum();
    let crashes = lanes.iter().filter(|l| l.fate == LaneFate::Crashed).count() as u64;
    let economy = eco.map(|_| {
        let residual = market.ledger_residual();
        let residual_bound = market.residual_bound();
        assert!(
            residual.abs() < residual_bound,
            "economy coordinator ledger residual {residual} exceeded its bound {residual_bound}"
        );
        EconomyLedger {
            rents: rents_hist,
            util_milli: util_hist,
            samples,
            total_income: market.total_income(),
            total_charged: market.total_charged(),
            residual,
            residual_bound,
        }
    });
    Ok(ShardRunReport {
        lanes,
        epochs,
        trace,
        pool_free: pool.free_frames(),
        conserved: pool.conserved(),
        ledger_residual: market.ledger_residual(),
        failovers,
        crashes,
        departures,
        spill_over_releases,
        economy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardEngineConfig {
        ShardEngineConfig {
            lanes: 4,
            frames_per_lane: 16,
            pages_per_lane: 24,
            epochs: 2,
            rounds_per_epoch: 1,
            spill_frames: 8,
            seed: 7,
            chaos: None,
            churn: false,
            economy: None,
        }
    }

    #[test]
    fn pool_grants_lowest_and_conserves() {
        let mut pool = SpillPool::new(100..110);
        assert_eq!(pool.total(), 10);
        assert_eq!(pool.grant(3, 4), 4);
        assert_eq!(pool.leased_to(3), 4);
        assert_eq!(pool.free_frames(), 6);
        assert!(pool.conserved());
        assert_eq!(pool.release(3, 2), 2);
        assert_eq!(pool.leased_to(3), 2);
        assert!(pool.conserved());
        // Over-asking is clamped on both sides.
        assert_eq!(pool.grant(5, 100), 8);
        assert_eq!(pool.free_frames(), 0);
        assert_eq!(pool.release(5, 100), 8);
        assert_eq!(pool.release(9, 1), 0);
        assert!(pool.conserved());
    }

    #[test]
    fn pool_release_all_seizes_everything() {
        let mut pool = SpillPool::new(0..6);
        pool.grant(1, 3);
        pool.grant(2, 2);
        assert_eq!(pool.release_all(1), 3);
        assert_eq!(pool.leased_to(1), 0);
        assert_eq!(pool.free_frames(), 4);
        assert!(pool.conserved());
    }

    #[test]
    fn engine_report_is_shard_count_invariant() {
        let cfg = tiny();
        let serial = run(&cfg, 1);
        for shards in [2u32, 3, 4, 8] {
            assert_eq!(
                serial,
                run(&cfg, shards),
                "--shards {shards} diverged from --shards 1"
            );
        }
    }

    #[test]
    fn engine_conserves_frames_and_ledger() {
        let report = run(&tiny(), 3);
        assert!(report.conserved, "spill ledger lost a frame");
        assert!(
            report.ledger_residual.abs() < 1e-6,
            "market residual {}",
            report.ledger_residual
        );
        assert_eq!(report.lanes.len(), 4);
        assert!(report.lanes.iter().all(|l| l.faults > 0));
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn quick_config_exercises_the_economy() {
        let report = run(&ShardEngineConfig::quick(), 4);
        // The overcommitted quick config must actually lease spill
        // frames at some point, or the cross-shard path went dead.
        assert!(
            report.trace.iter().any(|line| line.contains("lease +")),
            "no cross-shard lease ever happened:\n{}",
            report.trace.join("\n")
        );
        assert!(report.epochs.iter().any(|e| e.contended));
    }

    fn chaotic_tiny() -> ShardEngineConfig {
        ShardEngineConfig {
            epochs: 3,
            chaos: Some(ChaosPlan::new(0xC0FF_EE00).with_rate(1.0)),
            churn: true,
            ..tiny()
        }
    }

    #[test]
    fn churn_windows_are_deterministic_and_in_range() {
        let cfg = ShardEngineConfig {
            churn: true,
            ..ShardEngineConfig::quick()
        };
        for lane in 0..u64::from(cfg.lanes) {
            let (arrive, depart) = cfg.churn_window(lane);
            assert_eq!((arrive, depart), cfg.churn_window(lane));
            assert!(arrive < depart, "lane {lane}: empty window");
            assert!(depart <= cfg.epochs);
            assert!(arrive <= cfg.epochs / 3);
        }
        let plain = ShardEngineConfig::quick();
        assert_eq!(plain.churn_window(3), (0, plain.epochs));
    }

    #[test]
    fn chaos_run_is_shard_count_invariant() {
        let cfg = chaotic_tiny();
        let serial = run(&cfg, 1);
        for shards in [2u32, 3, 4, 8] {
            assert_eq!(
                serial,
                run(&cfg, shards),
                "--shards {shards} diverged from --shards 1 under chaos"
            );
        }
    }

    #[test]
    fn chaos_run_conserves_and_reports_incidents() {
        let report = run(&chaotic_tiny(), 2);
        assert!(report.conserved, "spill ledger lost a frame under chaos");
        assert!(
            report.ledger_residual.abs() < 1e-6,
            "market residual {}",
            report.ledger_residual
        );
        // Every epoch of every live lane injects at rate 1.0, so the
        // merged trace must carry incident lines.
        assert!(
            report.trace.iter().any(|l| l.contains("chaos injected")),
            "no chaos incident ever traced:\n{}",
            report.trace.join("\n")
        );
        // Churn over 3 epochs with third=1 must retire at least one lane.
        assert!(
            report.departures > 0,
            "churn never departed a lane:\n{}",
            report.trace.join("\n")
        );
        assert_eq!(report.lanes.len(), 4);
        assert_eq!(
            report.crashes,
            report
                .lanes
                .iter()
                .filter(|l| l.fate == LaneFate::Crashed)
                .count() as u64
        );
    }

    #[test]
    fn worker_panic_surfaces_as_structured_error() {
        struct PanickyWorkload;
        impl TenantWorkload for PanickyWorkload {
            fn round(&self, lane: u64, _: u32, _: u32, _: u64, _: u64) -> Vec<(u64, AccessKind)> {
                panic!("synthetic workload failure in lane {lane}");
            }
        }
        let err = try_run_with(&tiny(), 2, &PanickyWorkload)
            .expect_err("a panicking workload must not produce a report");
        let ShardEngineError::WorkerPanicked { message, .. } = err;
        assert!(
            message.contains("synthetic workload failure"),
            "panic context lost: {message}"
        );
    }

    #[test]
    fn workload_shrinks_cold_scan_under_lease() {
        let w = DefaultTenantWorkload { seed: 1 };
        let unleased = w.round(0, 0, 0, 48, 0).len();
        let leased = w.round(0, 0, 0, 48, 6).len();
        assert!(leased < unleased, "lease must absorb cold pages");
        // Determinism: same arguments, same plan.
        assert_eq!(w.round(3, 1, 0, 48, 2), w.round(3, 1, 0, 48, 2));
    }

    /// A tiered economy over [`tiny`]: steep rents against thin incomes,
    /// so lane-local ledgers go red and the enforcement ladder runs.
    fn eco_tiny() -> ShardEngineConfig {
        let mut cfg = tiny();
        cfg.churn = true;
        cfg.epochs = 3;
        cfg.economy = Some(EconomyParams {
            incomes: (0..cfg.lanes).map(|l| 2.0 + f64::from(l)).collect(),
            stake_secs: 30.0,
            market: MarketConfig {
                charge_per_mb_sec: 4_000.0,
                io_charge_per_block: 0.05,
                free_when_uncontended: false,
                ..MarketConfig::default()
            },
            schedule: PriceSchedule::new([4_000.0, 1_000.0, 400.0])
                .with_gain(0.002)
                .with_target_util_milli(700),
            tiers: Some(TierLayout::new(8, 6, 2)),
            horizon: Micros::from_millis(1),
            promotion_budget: 0,
            promotion_threshold: 2,
        });
        cfg
    }

    #[test]
    fn economy_report_is_shard_count_invariant() {
        let cfg = eco_tiny();
        let serial = run(&cfg, 1);
        for shards in [2u32, 3, 4] {
            assert_eq!(
                serial,
                run(&cfg, shards),
                "economy --shards {shards} diverged from --shards 1"
            );
        }
    }

    #[test]
    fn economy_run_observes_prices_and_conserves() {
        let cfg = eco_tiny();
        let report = run(&cfg, 2);
        let eco = report.economy.as_ref().expect("economy ledger");
        assert_eq!(eco.rents.len(), cfg.epochs as usize);
        assert_eq!(eco.util_milli.len(), cfg.epochs as usize);
        assert!(!eco.samples.is_empty());
        // The residual bound is asserted inside the run; re-check the
        // surfaced values agree.
        assert!(eco.residual.abs() < eco.residual_bound);
        assert!(report.conserved, "spill ledger lost a frame");
        // Steep rents against thin incomes must trip local enforcement
        // somewhere: demotions down the ladder or revocation demands.
        let demotions: u64 = report.lanes.iter().map(|l| l.demotions).sum();
        let revocations: u64 = report.lanes.iter().map(|l| l.revocations).sum();
        assert!(
            demotions + revocations > 0,
            "no lane ever hit the enforcement ladder (demotions={demotions}, revocations={revocations})"
        );
    }

    #[test]
    fn neutral_economy_equals_plain_run_except_ledger() {
        // A flat schedule at the static market's rate, the static
        // market's incomes, no tiers, no stake: the economy must add
        // observation only — every report field except `economy` equals
        // the plain run's, bit for bit.
        let plain = tiny();
        let mut neutral = tiny();
        neutral.economy = Some(EconomyParams {
            incomes: (0..neutral.lanes)
                .map(|l| 20.0 + 3.0 * f64::from(l))
                .collect(),
            stake_secs: 0.0,
            market: MarketConfig {
                charge_per_mb_sec: 200.0,
                io_charge_per_block: 0.05,
                ..MarketConfig::default()
            },
            schedule: PriceSchedule::flat([200.0, 50.0, 20.0]),
            tiers: None,
            horizon: Micros::from_millis(1),
            promotion_budget: 0,
            promotion_threshold: 2,
        });
        for shards in [1u32, 3] {
            let a = run(&plain, shards);
            let mut b = run(&neutral, shards);
            let eco = b.economy.take().expect("economy ledger");
            assert!(eco.rents.iter().all(|r| *r == [200.0, 50.0, 20.0]));
            assert_eq!(a, b, "neutral economy diverged from the plain run");
        }
    }
}
