//! The System Page Cache Manager (§2.4).
//!
//! The SPCM is the process-level module that owns the machine's global
//! frame pool (the kernel's well-known boot segment) and allocates it among
//! segment managers. It "can grant, defer or refuse" a request based on
//! policy, supports requests for particular frames "by physical address or
//! by physical address range" (physical placement) and by cache color, and
//! optionally runs the memory-market economy of [`crate::market`].

use std::collections::BTreeMap;
use std::fmt;

use epcm_core::flags::PageFlags;
use epcm_core::kernel::Kernel;
use epcm_core::tier::{MemTier, TierLayout};
use epcm_core::types::{FrameId, ManagerId, PageNumber, SegmentId};
use epcm_sim::clock::{Micros, Timestamp};

use crate::market::MemoryMarket;

/// A physical-placement constraint on a frame request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysConstraint {
    /// Any frame will do.
    Any,
    /// Frames whose physical byte address lies in `[lo, hi)` — NUMA-style
    /// placement on machines like DASH.
    AddrRange {
        /// Inclusive lower physical address.
        lo: u64,
        /// Exclusive upper physical address.
        hi: u64,
    },
    /// Frames of a particular cache color (`frame_index % colors ==
    /// color`), for application-specific page coloring.
    Color {
        /// The wanted color.
        color: u32,
        /// Number of colors in the cache.
        colors: u32,
    },
    /// Frames belonging to one physical memory tier of the machine's
    /// [`TierLayout`] — how a manager stocks its free-page segment with
    /// cheap SlowMem/CompressedRam frames to demote cold pages into.
    Tier(MemTier),
}

impl PhysConstraint {
    /// Whether `frame` satisfies the constraint under the machine's
    /// boot-time tier partition.
    pub fn admits(&self, frame: FrameId, tiers: &TierLayout) -> bool {
        match *self {
            PhysConstraint::Any => true,
            PhysConstraint::AddrRange { lo, hi } => {
                let a = frame.phys_addr();
                a >= lo && a < hi
            }
            PhysConstraint::Color { color, colors } => frame.color(colors) == color,
            PhysConstraint::Tier(tier) => tiers.tier_of(frame) == tier,
        }
    }
}

/// How the SPCM answers a frame request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// `n` frames were migrated into the requester's segment (possibly
    /// fewer than asked — the paper: "it allocates and provides as many
    /// page frames as it can or is willing to").
    Granted(u64),
    /// Nothing now; ask again later (e.g. the account cannot yet afford
    /// it, or memory is temporarily exhausted pending reclamation).
    Deferred,
    /// The request violates policy and will never be granted as posed.
    Refused,
}

impl Grant {
    /// Frames actually provided.
    pub fn granted(&self) -> u64 {
        match *self {
            Grant::Granted(n) => n,
            _ => 0,
        }
    }
}

/// Global allocation policy.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationPolicy {
    /// First-come-first-served until physical memory (minus the reserve)
    /// runs out — the conventional comparison point.
    FirstCome,
    /// Hard per-manager quota in frames; requests beyond it are refused.
    Quota {
        /// Frames allowed per manager.
        per_manager: u64,
    },
    /// The dram economy: requests are deferred until the account can
    /// afford the memory for `horizon` (the "reasonable time slice" a
    /// batch manager saves up for).
    Market {
        /// The ledger.
        market: MemoryMarket,
        /// The affordability horizon used when admitting a request.
        horizon: Micros,
    },
}

/// Parameters of the forced-reclamation (revocation) protocol the SPCM
/// runs against non-compliant managers (§3.1: "the SPCM reclaims pages
/// from managers that exceed their purchasing power").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevocationConfig {
    /// Virtual time a manager is given to satisfy a revoke demand through
    /// its own `reclaim` before the SPCM seizes frames by force.
    pub grace: Micros,
    /// Forced seizures a manager survives before it is destroyed and its
    /// segments handed to the default manager.
    pub max_strikes: u32,
    /// Drams debited per forcibly seized frame (market policy only).
    pub fee_per_frame: f64,
}

impl Default for RevocationConfig {
    fn default() -> Self {
        RevocationConfig {
            grace: Micros::from_millis(50),
            max_strikes: 3,
            fee_per_frame: 1.0,
        }
    }
}

/// An outstanding revoke demand against one manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Revocation {
    /// Frames demanded back.
    pub demanded: u64,
    /// Frames the manager held when the demand was issued; compliance
    /// means dropping to `baseline - demanded` or below.
    pub baseline: u64,
    /// Virtual-time deadline after which the SPCM seizes by force.
    pub deadline: Timestamp,
}

impl Revocation {
    /// Frames still owed given the manager's current holding.
    pub fn shortfall(&self, held: u64) -> u64 {
        let target = self.baseline.saturating_sub(self.demanded);
        held.saturating_sub(target)
    }
}

/// Errors from SPCM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpcmError {
    /// Kernel operation failed.
    Kernel(epcm_core::KernelError),
    /// The manager returned frames it was never granted.
    NotGranted {
        /// The over-returning manager.
        manager: ManagerId,
    },
}

impl fmt::Display for SpcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpcmError::Kernel(e) => write!(f, "kernel: {e}"),
            SpcmError::NotGranted { manager } => {
                write!(f, "{manager} returned frames it was not granted")
            }
        }
    }
}

impl std::error::Error for SpcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpcmError::Kernel(e) => Some(e),
            SpcmError::NotGranted { .. } => None,
        }
    }
}

impl From<epcm_core::KernelError> for SpcmError {
    fn from(e: epcm_core::KernelError) -> Self {
        SpcmError::Kernel(e)
    }
}

/// The System Page Cache Manager.
///
/// # Example
///
/// ```
/// use epcm_core::kernel::Kernel;
/// use epcm_core::types::{ManagerId, SegmentKind, UserId};
/// use epcm_managers::spcm::{AllocationPolicy, Grant, PhysConstraint, SystemPageCacheManager};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut kernel = Kernel::new(128);
/// let mut spcm = SystemPageCacheManager::new(AllocationPolicy::FirstCome, 8);
/// let free_seg = kernel.create_segment(
///     SegmentKind::FramePool, UserId::SYSTEM, ManagerId(1), 1, 64)?;
/// let grant = spcm.request_frames(
///     &mut kernel, ManagerId(1), free_seg, 16, PhysConstraint::Any)?;
/// assert_eq!(grant, Grant::Granted(16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPageCacheManager {
    policy: AllocationPolicy,
    /// Frames the SPCM keeps back for system use (the "first team").
    reserve: u64,
    granted: BTreeMap<u32, u64>,
    /// Whether any request has been deferred or trimmed since the last
    /// billing period — the market's contention signal.
    contended: bool,
    requests: u64,
    deferrals: u64,
    refusals: u64,
    revocation_config: RevocationConfig,
    /// Outstanding revoke demands by manager.
    revocations: BTreeMap<u32, Revocation>,
    /// Forced-seizure strikes by manager.
    strikes: BTreeMap<u32, u32>,
    revocations_issued: u64,
    frames_seized: u64,
    pages_quarantined: u64,
    managers_destroyed: u64,
}

impl SystemPageCacheManager {
    /// Creates an SPCM with the given policy, keeping `reserve` frames
    /// back from allocation.
    pub fn new(policy: AllocationPolicy, reserve: u64) -> Self {
        SystemPageCacheManager {
            policy,
            reserve,
            granted: BTreeMap::new(),
            contended: false,
            requests: 0,
            deferrals: 0,
            refusals: 0,
            revocation_config: RevocationConfig::default(),
            revocations: BTreeMap::new(),
            strikes: BTreeMap::new(),
            revocations_issued: 0,
            frames_seized: 0,
            pages_quarantined: 0,
            managers_destroyed: 0,
        }
    }

    /// The forced-reclamation parameters in force.
    pub fn revocation_config(&self) -> RevocationConfig {
        self.revocation_config
    }

    /// Replaces the forced-reclamation parameters.
    pub fn set_revocation_config(&mut self, config: RevocationConfig) {
        self.revocation_config = config;
    }

    /// Registers a revoke demand of `demanded` frames against `manager`,
    /// due `grace` after `now`. A demand already outstanding is left
    /// untouched (the original deadline stands). Returns the demand.
    pub fn begin_revocation(
        &mut self,
        manager: ManagerId,
        demanded: u64,
        now: Timestamp,
    ) -> Revocation {
        let baseline = self.granted_to(manager);
        let grace = self.revocation_config.grace;
        *self.revocations.entry(manager.0).or_insert_with(|| {
            self.revocations_issued += 1;
            Revocation {
                demanded,
                baseline,
                deadline: now + grace,
            }
        })
    }

    /// The outstanding revoke demand against `manager`, if any.
    pub fn revocation(&self, manager: ManagerId) -> Option<Revocation> {
        self.revocations.get(&manager.0).copied()
    }

    /// Whether `manager` has satisfied its outstanding demand (vacuously
    /// true with no demand outstanding).
    pub fn revocation_satisfied(&self, manager: ManagerId) -> bool {
        match self.revocations.get(&manager.0) {
            Some(r) => r.shortfall(self.granted_to(manager)) == 0,
            None => true,
        }
    }

    /// Clears the demand against `manager` and — compliance earning back
    /// trust — its strikes.
    pub fn clear_revocation(&mut self, manager: ManagerId) {
        self.revocations.remove(&manager.0);
        self.strikes.remove(&manager.0);
    }

    /// Managers whose revoke deadline has passed unmet, with their
    /// remaining shortfalls.
    pub fn expired_revocations(&self, now: Timestamp) -> Vec<(ManagerId, u64)> {
        self.revocations
            .iter()
            .filter(|(_, r)| now >= r.deadline)
            .map(|(&m, r)| (ManagerId(m), r.shortfall(self.granted_to(ManagerId(m)))))
            .filter(|&(_, short)| short > 0)
            .collect()
    }

    /// Records a forced seizure: `frames` frames taken from `manager` (of
    /// which `quarantined` went to the quarantine segment rather than the
    /// free pool), debits the seizure fee when a market is in force, and
    /// adds a strike. Returns the manager's strike count.
    pub fn note_seized(&mut self, manager: ManagerId, frames: u64, quarantined: u64) -> u32 {
        let held = self.granted.entry(manager.0).or_insert(0);
        *held = held.saturating_sub(frames);
        self.frames_seized += frames;
        self.pages_quarantined += quarantined;
        self.revocations.remove(&manager.0);
        let fee = self.revocation_config.fee_per_frame * frames as f64;
        if let Some(market) = self.market_mut() {
            market.debit(manager, fee);
        }
        let strikes = self.strikes.entry(manager.0).or_insert(0);
        *strikes += 1;
        *strikes
    }

    /// Forgets a destroyed manager: its grant, demand and strikes.
    pub fn note_destroyed(&mut self, manager: ManagerId) {
        self.granted.remove(&manager.0);
        self.revocations.remove(&manager.0);
        self.strikes.remove(&manager.0);
        self.managers_destroyed += 1;
    }

    /// Forgets a manager that was failed over to an heir. Unlike
    /// [`SystemPageCacheManager::note_destroyed`] this does not count as
    /// a destruction — the tenant's segments live on under the heir —
    /// but the dead manager's residual grant, demand and strikes are
    /// dropped and its market account is settled (balance forfeited,
    /// income stopped). Returns the settled balance when a market is in
    /// force.
    pub fn note_failed_over(&mut self, manager: ManagerId) -> Option<f64> {
        self.granted.remove(&manager.0);
        self.revocations.remove(&manager.0);
        self.strikes.remove(&manager.0);
        self.market_mut()
            .and_then(|market| market.settle_account(manager))
    }

    /// Forced-seizure strikes currently held against `manager`.
    pub fn strikes(&self, manager: ManagerId) -> u32 {
        self.strikes.get(&manager.0).copied().unwrap_or(0)
    }

    /// Lifetime forced-reclamation counters:
    /// `(demands issued, frames seized, pages quarantined, managers
    /// destroyed)`.
    pub fn revocation_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.revocations_issued,
            self.frames_seized,
            self.pages_quarantined,
            self.managers_destroyed,
        )
    }

    /// Moves up to `frames` of grant accounting from one manager to
    /// another — used when the machine reassigns a destroyed manager's
    /// still-resident segments so the ledger follows the frames.
    pub fn transfer_grant(&mut self, from: ManagerId, to: ManagerId, frames: u64) {
        let held = self.granted.entry(from.0).or_insert(0);
        let moved = frames.min(*held);
        *held -= moved;
        if moved > 0 {
            *self.granted.entry(to.0).or_insert(0) += moved;
        }
    }

    /// The allocation policy in force.
    pub fn policy(&self) -> &AllocationPolicy {
        &self.policy
    }

    /// Mutable access to the market ledger, when the policy is
    /// [`AllocationPolicy::Market`].
    pub fn market_mut(&mut self) -> Option<&mut MemoryMarket> {
        match &mut self.policy {
            AllocationPolicy::Market { market, .. } => Some(market),
            _ => None,
        }
    }

    /// Shared access to the market ledger.
    pub fn market(&self) -> Option<&MemoryMarket> {
        match &self.policy {
            AllocationPolicy::Market { market, .. } => Some(market),
            _ => None,
        }
    }

    /// Bills `manager` for `blocks` 4 KB I/O transfers on the market
    /// ledger, if one is in force. Managers call this when a writeback's
    /// disk reservation completes (completion-time billing); under
    /// non-market policies it is a no-op. Returns whether a ledger was
    /// charged.
    pub fn charge_manager_io(&mut self, manager: ManagerId, blocks: u64) -> bool {
        match self.market_mut() {
            Some(market) => {
                market.charge_io(manager, blocks);
                true
            }
            None => false,
        }
    }

    /// Frames currently grantable (boot-pool residents minus the reserve).
    pub fn available(&self, kernel: &Kernel) -> u64 {
        kernel
            .resident_pages(SegmentId::FRAME_POOL)
            .unwrap_or(0)
            .saturating_sub(self.reserve)
    }

    /// Frames currently granted to `manager`.
    pub fn granted_to(&self, manager: ManagerId) -> u64 {
        self.granted.get(&manager.0).copied().unwrap_or(0)
    }

    /// All outstanding grants as `(manager, frames)`.
    pub fn holdings(&self) -> Vec<(ManagerId, u64)> {
        self.granted
            .iter()
            .map(|(&m, &n)| (ManagerId(m), n))
            .collect()
    }

    /// `(requests, deferrals, refusals)` counters.
    pub fn decision_counts(&self) -> (u64, u64, u64) {
        (self.requests, self.deferrals, self.refusals)
    }

    /// Requests `count` frames for `manager`, migrated into `dst` (its
    /// free-page segment) at the lowest empty page slots.
    ///
    /// # Errors
    ///
    /// [`SpcmError::Kernel`] if the destination segment is invalid or the
    /// migration fails.
    pub fn request_frames(
        &mut self,
        kernel: &mut Kernel,
        manager: ManagerId,
        dst: SegmentId,
        count: u64,
        constraint: PhysConstraint,
    ) -> Result<Grant, SpcmError> {
        self.requests += 1;
        let available = self.available(kernel);
        let admit = match &self.policy {
            AllocationPolicy::FirstCome => count.min(available),
            AllocationPolicy::Quota { per_manager } => {
                let used = self.granted_to(manager);
                if used >= *per_manager {
                    self.refusals += 1;
                    self.contended = true;
                    return Ok(Grant::Refused);
                }
                count.min(per_manager - used).min(available)
            }
            AllocationPolicy::Market { market, horizon } => {
                let wanted = self.granted_to(manager) + count;
                if market.account(manager).is_none() {
                    self.refusals += 1;
                    self.contended = true;
                    return Ok(Grant::Refused);
                }
                if !market.can_afford(manager, wanted, *horizon) {
                    self.deferrals += 1;
                    self.contended = true;
                    return Ok(Grant::Deferred);
                }
                count.min(available)
            }
        };
        if admit == 0 {
            self.deferrals += 1;
            self.contended = true;
            return Ok(Grant::Deferred);
        }
        if admit < count {
            self.contended = true;
        }

        // Select matching frames from the boot pool (ordered by physical
        // address, as the boot segment is laid out).
        let tiers = *kernel.tiers();
        let boot = kernel.segment(SegmentId::FRAME_POOL)?;
        let picks: Vec<PageNumber> = boot
            .resident()
            .filter(|(_, e)| constraint.admits(e.frame, &tiers))
            .map(|(p, _)| p)
            .take(admit as usize)
            .collect();
        if picks.is_empty() {
            // Constraint unsatisfiable right now: same handling as an
            // exhausted unconstrained request (paper §2.4).
            self.deferrals += 1;
            self.contended = true;
            return Ok(Grant::Deferred);
        }

        // Find empty destination slots.
        let dst_seg = kernel.segment(dst)?;
        let dst_size = dst_seg.size_pages();
        let occupied: Vec<u64> = dst_seg.resident().map(|(p, _)| p.as_u64()).collect();
        let mut occ = occupied.iter().copied().peekable();
        let mut free_slots = Vec::with_capacity(picks.len());
        for p in 0..dst_size {
            if free_slots.len() == picks.len() {
                break;
            }
            match occ.peek() {
                Some(&o) if o == p => {
                    occ.next();
                }
                _ => free_slots.push(PageNumber(p)),
            }
        }
        let n = free_slots.len().min(picks.len());
        // Migrate maximal runs where both source and destination pages are
        // consecutive, so a 64-frame grant is a handful of MigratePages
        // calls rather than 64.
        let mut i = 0;
        while i < n {
            let mut len = 1;
            while i + len < n
                && picks[i + len].as_u64() == picks[i].as_u64() + len as u64
                && free_slots[i + len].as_u64() == free_slots[i].as_u64() + len as u64
            {
                len += 1;
            }
            kernel.migrate_pages(
                SegmentId::FRAME_POOL,
                dst,
                picks[i],
                free_slots[i],
                len as u64,
                PageFlags::RW,
                PageFlags::empty(),
            )?;
            i += len;
        }
        *self.granted.entry(manager.0).or_insert(0) += n as u64;
        Ok(Grant::Granted(n as u64))
    }

    /// Requests `pages` *large* pages for `manager`, composed from
    /// physically contiguous boot-pool frames and installed in `dst`
    /// (whose page size must be a multiple of the base page). This is the
    /// placement-control path for Alpha-style multiple page sizes: only
    /// the SPCM, which sees the whole frame pool in physical order, can
    /// find the contiguous runs.
    ///
    /// # Errors
    ///
    /// [`SpcmError::Kernel`] on composition failure.
    pub fn request_large_pages(
        &mut self,
        kernel: &mut Kernel,
        manager: ManagerId,
        dst: SegmentId,
        pages: u64,
    ) -> Result<Grant, SpcmError> {
        self.requests += 1;
        let k = kernel.segment(dst)?.page_frames();
        if k < 2 {
            self.refusals += 1;
            return Ok(Grant::Refused);
        }
        let frames_wanted = pages * k;
        let available = self.available(kernel);
        if available < k {
            self.deferrals += 1;
            self.contended = true;
            return Ok(Grant::Deferred);
        }
        let budget = frames_wanted.min(available) / k;
        // Find runs of `k` consecutive resident boot pages; in the boot
        // segment, page number == frame index, so page-contiguity is
        // frame-contiguity.
        let resident: Vec<u64> = kernel
            .segment(SegmentId::FRAME_POOL)?
            .resident()
            .map(|(p, _)| p.as_u64())
            .collect();
        let mut runs: Vec<u64> = Vec::new();
        let mut i = 0;
        while i < resident.len() && (runs.len() as u64) < budget {
            let start = resident[i];
            let mut len = 1usize;
            while i + len < resident.len()
                && resident[i + len] == start + len as u64
                && (len as u64) < k
            {
                len += 1;
            }
            if len as u64 == k {
                runs.push(start);
            }
            i += len;
        }
        if runs.is_empty() {
            self.deferrals += 1;
            self.contended = true;
            return Ok(Grant::Deferred);
        }
        // Destination slots: lowest empty large-page slots.
        let dst_size = kernel.segment(dst)?.size_pages();
        let occupied: std::collections::BTreeSet<u64> = kernel
            .segment(dst)?
            .resident()
            .map(|(p, _)| p.as_u64())
            .collect();
        let mut slots = (0..dst_size).filter(|p| !occupied.contains(p));
        let mut granted = 0u64;
        for &start in &runs {
            let Some(slot) = slots.next() else { break };
            kernel.compose_page(
                SegmentId::FRAME_POOL,
                dst,
                PageNumber(start),
                PageNumber(slot),
                PageFlags::RW,
                PageFlags::empty(),
            )?;
            granted += 1;
        }
        if granted == 0 {
            self.deferrals += 1;
            return Ok(Grant::Deferred);
        }
        if granted < pages {
            self.contended = true;
        }
        *self.granted.entry(manager.0).or_insert(0) += granted * k;
        Ok(Grant::Granted(granted))
    }

    /// Returns frames from `src` pages back to the global pool. Each frame
    /// migrates to its home boot-segment slot (page number == physical
    /// frame index), which is empty by the conservation invariant.
    ///
    /// # Errors
    ///
    /// [`SpcmError::NotGranted`] if `manager` returns more than it holds;
    /// [`SpcmError::Kernel`] on migration failure.
    pub fn return_frames(
        &mut self,
        kernel: &mut Kernel,
        manager: ManagerId,
        src: SegmentId,
        pages: &[PageNumber],
    ) -> Result<(), SpcmError> {
        let held = self.granted_to(manager);
        if (pages.len() as u64) > held {
            return Err(SpcmError::NotGranted { manager });
        }
        for &p in pages {
            let entry =
                kernel
                    .segment(src)?
                    .entry(p)
                    .ok_or(epcm_core::KernelError::PageNotPresent {
                        segment: src,
                        page: p,
                    })?;
            let home = PageNumber(entry.frame.index() as u64);
            kernel.migrate_pages(
                src,
                SegmentId::FRAME_POOL,
                p,
                home,
                1,
                PageFlags::RW,
                PageFlags::DIRTY | PageFlags::REFERENCED,
            )?;
        }
        *self.granted.entry(manager.0).or_insert(0) -= pages.len() as u64;
        Ok(())
    }

    /// Runs a market billing period (no-op under other policies). Returns
    /// the bankrupt managers the machine must force reclamation from, and
    /// clears the contention signal for the next period.
    pub fn bill(&mut self, kernel: &Kernel) -> Vec<ManagerId> {
        self.bill_traced(kernel, None)
    }

    /// [`SystemPageCacheManager::bill`], additionally recording market
    /// charges into `tracer` (the [`Machine`](crate::Machine) passes its
    /// shared event tracer here).
    pub fn bill_traced(
        &mut self,
        kernel: &Kernel,
        tracer: Option<&epcm_trace::SharedTracer>,
    ) -> Vec<ManagerId> {
        let now = kernel.now();
        let contended = self.contended;
        self.contended = false;
        if !matches!(self.policy, AllocationPolicy::Market { .. }) {
            return Vec::new();
        }
        // On tiered machines, bill per tier (M*D*T scaled by the tier
        // multiplier); flat machines keep the original single-rate path
        // so their ledgers stay float-identical to pre-tier builds.
        let tiered = if kernel.tiers().is_dram_only() {
            None
        } else {
            Some(Self::tiered_holdings(kernel))
        };
        let holdings = self.holdings();
        match &mut self.policy {
            AllocationPolicy::Market { market, .. } => match tiered {
                Some(by_tier) => market.bill_tiered_traced(now, &by_tier, contended, tracer),
                None => market.bill_traced(now, &holdings, contended, tracer),
            },
            _ => Vec::new(),
        }
    }

    /// Public view of [`SystemPageCacheManager::tiered_holdings`]: each
    /// non-system manager's frame count per memory tier, derived from
    /// the frame table. The economy engine reads this at every epoch
    /// barrier to build residency-by-tier occupancy curves.
    pub fn holdings_by_tier(&self, kernel: &Kernel) -> Vec<(ManagerId, [u64; MemTier::COUNT])> {
        Self::tiered_holdings(kernel)
    }

    /// Per-manager, per-tier frame holdings derived from the frame table:
    /// every frame outside the boot pool is attributed to the manager of
    /// the segment it currently sits in (free-page segments included —
    /// stocked frames cost money, which is what makes demotion pay).
    fn tiered_holdings(kernel: &Kernel) -> Vec<(ManagerId, [u64; MemTier::COUNT])> {
        let mut map: BTreeMap<u32, [u64; MemTier::COUNT]> = BTreeMap::new();
        for frame in kernel.frames().ids() {
            let Some((seg, _)) = kernel.frames().owner(frame) else {
                continue;
            };
            if seg == SegmentId::FRAME_POOL {
                continue;
            }
            let Ok(segment) = kernel.segment(seg) else {
                continue;
            };
            let manager = segment.manager();
            if manager == ManagerId::SYSTEM {
                continue;
            }
            map.entry(manager.0).or_default()[kernel.tiers().tier_of(frame).index()] += 1;
        }
        map.into_iter().map(|(m, t)| (ManagerId(m), t)).collect()
    }

    /// Exports the SPCM's counters (and the market ledger totals, when a
    /// market policy is in force) into `m` under `spcm.*` / `market.*`
    /// names. Dram amounts are exported in millidrams, since the registry
    /// holds integers.
    pub fn export_metrics(&self, m: &mut epcm_trace::MetricsRegistry) {
        m.set("spcm.requests", self.requests);
        m.set("spcm.deferrals", self.deferrals);
        m.set("spcm.refusals", self.refusals);
        m.set("spcm.granted_frames", self.granted.values().sum());
        m.set("spcm.granted_managers", self.granted.len() as u64);
        m.set("spcm.revoked.issued", self.revocations_issued);
        m.set("spcm.revoked.active", self.revocations.len() as u64);
        m.set("spcm.revoked.seized_frames", self.frames_seized);
        m.set("spcm.revoked.quarantined_pages", self.pages_quarantined);
        m.set("spcm.revoked.destroyed_managers", self.managers_destroyed);
        if let Some(market) = self.market() {
            m.set(
                "market.total_charged_millidrams",
                (market.total_charged() * 1000.0).round() as u64,
            );
            m.set(
                "market.total_income_millidrams",
                (market.total_income() * 1000.0).round() as u64,
            );
            m.set(
                "market.total_tax_millidrams",
                (market.total_tax() * 1000.0).round() as u64,
            );
            // Dynamic rents and the residual check only appear once a
            // price schedule has been applied, so schedule-free runs
            // export exactly the pre-economy key set.
            if let Some(rents) = market.tier_rents() {
                for tier in MemTier::all() {
                    m.set(
                        &format!("market.rent.{}_millidrams", tier.name()),
                        (rents[tier.index()] * 1000.0).round() as u64,
                    );
                }
                m.set(
                    "market.ledger_residual_abs_nanodrams",
                    (market.ledger_residual().abs() * 1e9).round() as u64,
                );
            }
        }
    }
}

impl fmt::Display for SystemPageCacheManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total: u64 = self.granted.values().sum();
        write!(
            f,
            "spcm: {total} frames granted across {} managers ({} req / {} defer / {} refuse)",
            self.granted.len(),
            self.requests,
            self.deferrals,
            self.refusals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epcm_core::types::{SegmentKind, UserId};

    fn setup(
        frames: usize,
        policy: AllocationPolicy,
        reserve: u64,
    ) -> (Kernel, SystemPageCacheManager, SegmentId) {
        let mut kernel = Kernel::new(frames);
        let spcm = SystemPageCacheManager::new(policy, reserve);
        let free = kernel
            .create_segment(
                SegmentKind::FramePool,
                UserId::SYSTEM,
                ManagerId(1),
                1,
                frames as u64,
            )
            .unwrap();
        (kernel, spcm, free)
    }

    #[test]
    fn first_come_grants_until_reserve() {
        let (mut k, mut spcm, free) = setup(64, AllocationPolicy::FirstCome, 8);
        let g = spcm
            .request_frames(&mut k, ManagerId(1), free, 100, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g, Grant::Granted(56));
        assert_eq!(spcm.available(&k), 0);
        assert_eq!(spcm.granted_to(ManagerId(1)), 56);
        // Next request defers.
        let g2 = spcm
            .request_frames(&mut k, ManagerId(1), free, 1, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g2, Grant::Deferred);
    }

    #[test]
    fn quota_refuses_beyond_limit() {
        let (mut k, mut spcm, free) = setup(64, AllocationPolicy::Quota { per_manager: 10 }, 0);
        let g = spcm
            .request_frames(&mut k, ManagerId(1), free, 30, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g, Grant::Granted(10));
        let g2 = spcm
            .request_frames(&mut k, ManagerId(1), free, 1, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g2, Grant::Refused);
        let (req, _, refusals) = spcm.decision_counts();
        assert_eq!(req, 2);
        assert_eq!(refusals, 1);
    }

    #[test]
    fn address_range_constraint_respected() {
        let (mut k, mut spcm, free) = setup(64, AllocationPolicy::FirstCome, 0);
        // Frames 16..32 only.
        let g = spcm
            .request_frames(
                &mut k,
                ManagerId(1),
                free,
                100,
                PhysConstraint::AddrRange {
                    lo: 16 * 4096,
                    hi: 32 * 4096,
                },
            )
            .unwrap();
        assert_eq!(g, Grant::Granted(16));
        for (_, e) in k.segment(free).unwrap().resident() {
            assert!((16..32).contains(&(e.frame.index() as u64)));
        }
    }

    #[test]
    fn color_constraint_respected() {
        let (mut k, mut spcm, free) = setup(64, AllocationPolicy::FirstCome, 0);
        let g = spcm
            .request_frames(
                &mut k,
                ManagerId(1),
                free,
                10,
                PhysConstraint::Color {
                    color: 3,
                    colors: 8,
                },
            )
            .unwrap();
        assert_eq!(g, Grant::Granted(8)); // 64 frames / 8 colors
        for (_, e) in k.segment(free).unwrap().resident() {
            assert_eq!(e.frame.color(8), 3);
        }
    }

    #[test]
    fn return_frames_restores_pool_and_reuse() {
        let (mut k, mut spcm, free) = setup(32, AllocationPolicy::FirstCome, 0);
        spcm.request_frames(&mut k, ManagerId(1), free, 5, PhysConstraint::Any)
            .unwrap();
        let pages: Vec<PageNumber> = k
            .segment(free)
            .unwrap()
            .resident()
            .map(|(p, _)| p)
            .collect();
        spcm.return_frames(&mut k, ManagerId(1), free, &pages)
            .unwrap();
        assert_eq!(spcm.granted_to(ManagerId(1)), 0);
        assert_eq!(k.resident_pages(SegmentId::FRAME_POOL).unwrap(), 32);
        // Frames land in their home slots: page == frame index.
        for (p, e) in k.segment(SegmentId::FRAME_POOL).unwrap().resident() {
            assert_eq!(p.as_u64(), e.frame.index() as u64);
        }
    }

    #[test]
    fn over_return_is_error() {
        let (mut k, mut spcm, free) = setup(32, AllocationPolicy::FirstCome, 0);
        spcm.request_frames(&mut k, ManagerId(1), free, 2, PhysConstraint::Any)
            .unwrap();
        let err = spcm
            .return_frames(
                &mut k,
                ManagerId(1),
                free,
                &[PageNumber(0), PageNumber(1), PageNumber(2)],
            )
            .unwrap_err();
        assert_eq!(
            err,
            SpcmError::NotGranted {
                manager: ManagerId(1)
            }
        );
    }

    #[test]
    fn market_defers_until_affordable() {
        use crate::market::{MarketConfig, MemoryMarket};
        let mut market = MemoryMarket::new(MarketConfig {
            income_per_sec: 1.0,
            ..MarketConfig::default()
        });
        market.open_account(ManagerId(1), None);
        let policy = AllocationPolicy::Market {
            market,
            horizon: Micros::from_secs(10),
        };
        let (mut k, mut spcm, free) = setup(512, policy, 0);
        // Fresh account, zero balance: 256 frames for 10 s costs 10 drams.
        let g = spcm
            .request_frames(&mut k, ManagerId(1), free, 256, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g, Grant::Deferred);
        // Earn income for 20 virtual seconds, then retry.
        k.charge(Micros::from_secs(20));
        let bankrupt = spcm.bill(&k);
        assert!(bankrupt.is_empty());
        let g2 = spcm
            .request_frames(&mut k, ManagerId(1), free, 256, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g2, Grant::Granted(256));
    }

    #[test]
    fn market_bankruptcy_reported_through_bill() {
        use crate::market::{MarketConfig, MemoryMarket};
        use epcm_core::types::AccessKind;
        let mut market = MemoryMarket::new(MarketConfig {
            income_per_sec: 100.0,
            ..MarketConfig::default()
        });
        market.open_account(ManagerId(1), Some(0.01));
        let policy = AllocationPolicy::Market {
            market,
            horizon: Micros::new(1), // trivially affordable horizon
        };
        let mut machine = crate::Machine::builder(512).allocation(policy).build();
        let mgr = machine.register_manager(Box::new(crate::DefaultSegmentManager::server()));
        assert_eq!(mgr, ManagerId(1), "account was opened for manager 1");
        machine.set_default_manager(mgr);
        machine.kernel_mut().charge(Micros::from_secs(100)); // accrue a little income
        machine.tick().unwrap(); // first bill deposits it
                                 // Touch more pages than the machine has frames: the manager ends
                                 // up holding nearly the whole pool and the market turns contended.
        let seg = machine
            .create_segment(SegmentKind::Anonymous, 1024)
            .unwrap();
        for p in 0..600 {
            machine.touch(seg, p, AccessKind::Write).unwrap();
        }
        let held_before = machine.spcm().granted_to(mgr);
        assert!(held_before > 0);
        // ~2 MB held for 1000 s dwarfs the 0.01 dram/s income.
        machine.kernel_mut().charge(Micros::from_secs(1000));
        machine.tick().unwrap();
        // The bill drove the account bankrupt...
        let balance = machine.spcm().market().unwrap().balance(mgr).unwrap();
        assert!(balance < 0.0, "expected bankruptcy, balance {balance}");
        // ...and the machine responded by clawing frames back: the demand
        // was met (politely or by force) and the holding shrank.
        let held_after = machine.spcm().granted_to(mgr);
        assert!(
            held_after <= held_before - held_before.div_ceil(2),
            "holding not clawed back: {held_before} -> {held_after}"
        );
        assert!(machine.spcm().revocation_satisfied(mgr));
        // Conservation: every seized frame is back in the boot pool.
        let pool = machine
            .kernel()
            .resident_pages(SegmentId::FRAME_POOL)
            .unwrap();
        assert!(pool >= held_before - held_after);
    }

    #[test]
    fn revocation_state_machine_tracks_demands_and_strikes() {
        let (mut k, mut spcm, free) = setup(64, AllocationPolicy::FirstCome, 0);
        spcm.request_frames(&mut k, ManagerId(1), free, 16, PhysConstraint::Any)
            .unwrap();
        let now = k.now();
        let demand = spcm.begin_revocation(ManagerId(1), 8, now);
        assert_eq!(demand.demanded, 8);
        assert_eq!(demand.baseline, 16);
        assert_eq!(demand.deadline, now + spcm.revocation_config().grace);
        assert!(!spcm.revocation_satisfied(ManagerId(1)));
        // Re-issuing does not reset the deadline or re-count the demand.
        k.charge(Micros::from_millis(1));
        let again = spcm.begin_revocation(ManagerId(1), 12, k.now());
        assert_eq!(again.deadline, demand.deadline);
        // Not expired before the grace deadline.
        assert!(spcm.expired_revocations(now).is_empty());
        let late = demand.deadline + Micros::from_millis(1);
        assert_eq!(
            spcm.expired_revocations(late),
            vec![(ManagerId(1), 8)],
            "full shortfall still outstanding"
        );
        // A forced seizure settles the demand and records a strike.
        let strikes = spcm.note_seized(ManagerId(1), 8, 3);
        assert_eq!(strikes, 1);
        assert_eq!(spcm.granted_to(ManagerId(1)), 8);
        assert!(spcm.revocation_satisfied(ManagerId(1)));
        assert!(spcm.expired_revocations(late).is_empty());
        // Compliance forgives strikes; destruction forgets the manager.
        spcm.begin_revocation(ManagerId(1), 2, late);
        spcm.clear_revocation(ManagerId(1));
        assert_eq!(spcm.strikes(ManagerId(1)), 0);
        spcm.note_destroyed(ManagerId(1));
        assert_eq!(spcm.granted_to(ManagerId(1)), 0);
    }

    #[test]
    fn transfer_grant_moves_accounting_between_managers() {
        let (mut k, mut spcm, free) = setup(64, AllocationPolicy::FirstCome, 0);
        spcm.request_frames(&mut k, ManagerId(1), free, 10, PhysConstraint::Any)
            .unwrap();
        spcm.transfer_grant(ManagerId(1), ManagerId(2), 4);
        assert_eq!(spcm.granted_to(ManagerId(1)), 6);
        assert_eq!(spcm.granted_to(ManagerId(2)), 4);
        // Transfers are clamped to what the source actually holds.
        spcm.transfer_grant(ManagerId(1), ManagerId(2), 100);
        assert_eq!(spcm.granted_to(ManagerId(1)), 0);
        assert_eq!(spcm.granted_to(ManagerId(2)), 10);
    }

    #[test]
    fn unknown_market_account_is_refused() {
        use crate::market::{MarketConfig, MemoryMarket};
        let policy = AllocationPolicy::Market {
            market: MemoryMarket::new(MarketConfig::default()),
            horizon: Micros::from_secs(1),
        };
        let (mut k, mut spcm, free) = setup(32, policy, 0);
        let g = spcm
            .request_frames(&mut k, ManagerId(7), free, 1, PhysConstraint::Any)
            .unwrap();
        assert_eq!(g, Grant::Refused);
    }

    #[test]
    fn display_shows_counts() {
        let (mut k, mut spcm, free) = setup(16, AllocationPolicy::FirstCome, 0);
        spcm.request_frames(&mut k, ManagerId(1), free, 4, PhysConstraint::Any)
            .unwrap();
        assert!(spcm.to_string().contains("4 frames granted"));
    }
}

#[cfg(test)]
mod large_page_tests {
    use super::*;
    use epcm_core::types::{SegmentKind, UserId};

    fn setup(frames: usize) -> (Kernel, SystemPageCacheManager, SegmentId) {
        let mut kernel = Kernel::new(frames);
        let spcm = SystemPageCacheManager::new(AllocationPolicy::FirstCome, 0);
        let big = kernel
            .create_segment(SegmentKind::Anonymous, UserId::SYSTEM, ManagerId(1), 4, 16)
            .unwrap();
        (kernel, spcm, big)
    }

    #[test]
    fn grants_composed_large_pages() {
        let (mut k, mut spcm, big) = setup(64);
        let g = spcm
            .request_large_pages(&mut k, ManagerId(1), big, 3)
            .unwrap();
        assert_eq!(g, Grant::Granted(3));
        assert_eq!(k.resident_pages(big).unwrap(), 3);
        assert_eq!(spcm.granted_to(ManagerId(1)), 12); // frames, not pages
                                                       // Each large page's frame is 4-aligned relative to its run start
                                                       // and physically contiguous (compose_page verified it).
        for (_, e) in k.segment(big).unwrap().resident() {
            assert!(k.frames().is_valid(e.frame));
        }
    }

    #[test]
    fn fragmented_pool_defers() {
        let (mut k, mut spcm, big) = setup(64);
        // Fragment the pool: pull out every 4th frame as base pages.
        let scratch = k
            .create_segment(SegmentKind::FramePool, UserId::SYSTEM, ManagerId(2), 1, 64)
            .unwrap();
        for i in (0..64).step_by(4) {
            k.migrate_pages(
                SegmentId::FRAME_POOL,
                scratch,
                PageNumber(i),
                PageNumber(i),
                1,
                PageFlags::RW,
                PageFlags::empty(),
            )
            .unwrap();
        }
        // No run of 4 contiguous frames remains.
        let g = spcm
            .request_large_pages(&mut k, ManagerId(1), big, 1)
            .unwrap();
        assert_eq!(g, Grant::Deferred);
    }

    #[test]
    fn base_page_segment_is_refused() {
        let mut kernel = Kernel::new(16);
        let mut spcm = SystemPageCacheManager::new(AllocationPolicy::FirstCome, 0);
        let small = kernel
            .create_segment(SegmentKind::Anonymous, UserId::SYSTEM, ManagerId(1), 1, 4)
            .unwrap();
        let g = spcm
            .request_large_pages(&mut kernel, ManagerId(1), small, 1)
            .unwrap();
        assert_eq!(g, Grant::Refused);
    }

    #[test]
    fn partial_grant_when_pool_is_short() {
        let (mut k, mut spcm, big) = setup(8); // only 2 large pages possible
        let g = spcm
            .request_large_pages(&mut k, ManagerId(1), big, 5)
            .unwrap();
        assert_eq!(g, Grant::Granted(2));
    }

    #[test]
    fn large_page_data_roundtrip_through_spcm_grant() {
        let (mut k, mut spcm, big) = setup(64);
        spcm.request_large_pages(&mut k, ManagerId(1), big, 1)
            .unwrap();
        let data: Vec<u8> = (0..16384u32).map(|i| (i % 239) as u8).collect();
        assert!(k.store(big, 0, &data).unwrap().is_completed());
        let mut back = vec![0u8; data.len()];
        assert!(k.load(big, 0, &mut back).unwrap().is_completed());
        assert_eq!(back, data);
    }
}
