//! The machine: kernel + backing store + SPCM + segment managers, with the
//! fault-dispatch loop of Figure 2.
//!
//! The kernel never calls managers (see `epcm-core`); instead every
//! application-level access goes through [`Machine`], which retries the
//! access after routing each [`FaultEvent`] to its manager and charging the
//! dispatch costs appropriate to the manager's [`ManagerMode`]:
//!
//! 1. the application references a missing page and traps (`trap_entry`,
//!    charged by the kernel),
//! 2. the kernel forwards the fault to the manager (in-process upcall or
//!    IPC to a server),
//! 3. the manager allocates a frame, fetches data if needed,
//! 4. the manager migrates the frame to the faulting address,
//! 5. the application resumes (directly, or back through the kernel).

use std::collections::BTreeMap;
use std::fmt;

use epcm_core::fault::FaultEvent;
use epcm_core::flags::PageFlags;
use epcm_core::kernel::{AccessOutcome, Kernel, KernelStats};
use epcm_core::tier::{MemTier, TierLayout};
use epcm_core::types::{
    AccessKind, ManagerId, PageNumber, SegmentId, SegmentKind, UserId, BASE_PAGE_SIZE,
};
use epcm_core::watchdog::{UpcallKind, UpcallVerdict, Watchdog, WatchdogConfig};
use epcm_sim::clock::{Micros, Timestamp};
use epcm_sim::cost::CostModel;
use epcm_sim::disk::{Device, FileId, FileStore, FileStoreError};
use epcm_trace::{EventKind, MetricsRegistry, SharedTracer, TraceEvent, TraceSink};

use crate::manager::{Env, ManagerError, ManagerMode, SegmentManager};
use crate::spcm::{AllocationPolicy, SpcmError, SystemPageCacheManager};

/// How many times an access is retried through fault handling before the
/// machine declares a livelock. Each retry means the manager claimed to
/// repair the fault but the access faulted again; legitimate chains (COW
/// needing a source fill first, protection batches) resolve within a few.
pub const MAX_FAULT_RETRIES: u32 = 16;

/// Errors surfaced by machine operations.
#[derive(Debug)]
pub enum MachineError {
    /// The kernel rejected an operation (caller bug, not a fault).
    Kernel(epcm_core::KernelError),
    /// A manager failed to repair a fault.
    Manager {
        /// The fault being serviced.
        fault: FaultEvent,
        /// What the manager reported.
        source: ManagerError,
    },
    /// A manager operation outside fault handling (attach, reclaim,
    /// close, application command) failed.
    ManagerOp {
        /// The manager involved.
        manager: ManagerId,
        /// What it reported.
        source: ManagerError,
    },
    /// A fault named a manager id nobody registered.
    UnknownManager(ManagerId),
    /// The same access faulted [`MAX_FAULT_RETRIES`] times.
    FaultLivelock(FaultEvent),
    /// `open_file` was given a name the store does not know.
    UnknownFile(String),
    /// The SPCM rejected a frame-ledger operation (failover returning a
    /// dead manager's pool frames, or a byzantine over-return).
    Spcm(SpcmError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Kernel(e) => write!(f, "kernel: {e}"),
            MachineError::Manager { fault, source } => {
                write!(f, "manager failed on {fault}: {source}")
            }
            MachineError::ManagerOp { manager, source } => {
                write!(f, "{manager} operation failed: {source}")
            }
            MachineError::UnknownManager(m) => write!(f, "no registered manager {m}"),
            MachineError::FaultLivelock(fault) => {
                write!(f, "fault not making progress after retries: {fault}")
            }
            MachineError::UnknownFile(name) => write!(f, "no such file {name:?}"),
            MachineError::Spcm(e) => write!(f, "spcm: {e}"),
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Kernel(e) => Some(e),
            MachineError::Manager { source, .. } => Some(source),
            MachineError::ManagerOp { source, .. } => Some(source),
            MachineError::Spcm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<epcm_core::KernelError> for MachineError {
    fn from(e: epcm_core::KernelError) -> Self {
        MachineError::Kernel(e)
    }
}

impl From<SpcmError> for MachineError {
    fn from(e: SpcmError) -> Self {
        MachineError::Spcm(e)
    }
}

/// One step of the Figure 2 walkthrough, recorded when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStep {
    /// Step 1: the kernel forwarded a fault.
    FaultRaised(FaultEvent),
    /// Steps 2–4: dispatched to the manager in the given mode.
    Dispatched {
        /// The handling manager.
        manager: ManagerId,
        /// Its execution mode.
        mode: ManagerMode,
    },
    /// Step 5: handler returned; the application resumes.
    Resumed {
        /// Virtual time consumed by the whole fault, trap to resume.
        elapsed: Micros,
    },
}

/// Aggregate machine statistics (Table 3 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Times any manager was invoked (fault dispatches + segment-close
    /// notifications) — Table 3 column 1.
    pub manager_calls: u64,
    /// Total virtual time spent from trap to resume across all dispatches.
    pub manager_time: Micros,
}

/// Configures and builds a [`Machine`].
///
/// # Example
///
/// ```
/// use epcm_managers::Machine;
/// use epcm_sim::disk::Device;
///
/// let machine = Machine::builder(1024)
///     .device(Device::network_1992())
///     .spcm_reserve(16)
///     .build();
/// assert_eq!(machine.kernel().frames().len(), 1024);
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    frames: usize,
    costs: CostModel,
    device: Device,
    policy: AllocationPolicy,
    reserve: u64,
    tiers: Option<TierLayout>,
    watchdog: Option<WatchdogConfig>,
}

impl MachineBuilder {
    /// Starts a builder for a machine with `frames` page frames.
    pub fn new(frames: usize) -> Self {
        MachineBuilder {
            frames,
            costs: CostModel::decstation_5000_200(),
            device: Device::Instant,
            policy: AllocationPolicy::FirstCome,
            reserve: 0,
            tiers: None,
            watchdog: None,
        }
    }

    /// Partitions the frame pool into physical memory tiers (default:
    /// all DRAM). The layout's total must equal the machine's frame
    /// count.
    pub fn tiers(mut self, tiers: TierLayout) -> Self {
        self.tiers = Some(tiers);
        self
    }

    /// Sets the machine cost model (default: DECstation 5000/200).
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the backing-store device model (default: instant, excluding
    /// I/O from measurements as the paper's cached-file runs do).
    pub fn device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Sets the SPCM allocation policy (default: first-come-first-served).
    pub fn allocation(mut self, policy: AllocationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Frames the SPCM withholds from allocation (default: 0).
    pub fn spcm_reserve(mut self, reserve: u64) -> Self {
        self.reserve = reserve;
        self
    }

    /// Enables the upcall watchdog (default: off). Off by default so
    /// that chaos-free runs carry no watchdog state and their ledgers
    /// stay byte-identical with pre-watchdog builds.
    pub fn watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        Machine {
            kernel: match self.tiers {
                Some(tiers) => Kernel::with_tiers(self.frames, self.costs, tiers),
                None => Kernel::with_costs(self.frames, self.costs),
            },
            store: FileStore::new(self.device),
            spcm: SystemPageCacheManager::new(self.policy, self.reserve),
            managers: BTreeMap::new(),
            next_manager: 1,
            default_manager: None,
            stats: MachineStats::default(),
            trace: None,
            event_tracer: None,
            quarantine_seg: None,
            watchdog: self.watchdog.map(Watchdog::new),
        }
    }
}

/// The complete simulated system: V++ kernel, backing store, SPCM and
/// registered segment managers.
///
/// # Example
///
/// ```
/// use epcm_managers::Machine;
/// use epcm_core::{AccessKind, SegmentKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::with_default_manager(512);
/// let heap = machine.create_segment(SegmentKind::Anonymous, 64)?;
/// machine.touch(heap, 0, AccessKind::Write)?; // minimal fault, resolved
/// assert_eq!(machine.kernel().resident_pages(heap)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    kernel: Kernel,
    store: FileStore,
    spcm: SystemPageCacheManager,
    managers: BTreeMap<u32, Box<dyn SegmentManager>>,
    next_manager: u32,
    default_manager: Option<ManagerId>,
    stats: MachineStats,
    trace: Option<Vec<TraceStep>>,
    event_tracer: Option<SharedTracer>,
    /// System-owned segment where seized dirty pages that could not be
    /// written back are impounded; created on first use.
    quarantine_seg: Option<SegmentId>,
    /// Deadline enforcement on manager upcalls; `None` (the default)
    /// keeps chaos-free runs byte-identical with pre-watchdog builds.
    watchdog: Option<Watchdog>,
}

/// Write-back attempts the machine itself makes while seizing a dirty
/// page (the evicted manager no longer gets a say).
const SEIZE_RETRY_LIMIT: u32 = 3;

/// Base backoff between machine-level seizure write-back retries;
/// doubles per attempt.
const SEIZE_RETRY_BACKOFF: Micros = Micros::new(500);

impl Machine {
    /// Starts building a machine with `frames` page frames.
    pub fn builder(frames: usize) -> MachineBuilder {
        MachineBuilder::new(frames)
    }

    /// A machine with no managers registered; segments must be created via
    /// [`Machine::create_segment_with`] against explicitly registered
    /// managers.
    pub fn new(frames: usize) -> Self {
        Machine::builder(frames).build()
    }

    /// A machine with the default segment manager (UCDS analog) registered
    /// and serving as the manager for new segments — the configuration
    /// conventional programs see.
    pub fn with_default_manager(frames: usize) -> Self {
        let mut m = Machine::new(frames);
        let mgr = crate::default_manager::DefaultSegmentManager::server();
        let id = m.register_manager(Box::new(mgr));
        m.set_default_manager(id);
        m
    }

    // ----- accessors --------------------------------------------------------

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access (tests, custom drivers).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The backing store.
    pub fn store(&self) -> &FileStore {
        &self.store
    }

    /// Mutable backing store (to create input files for a workload).
    pub fn store_mut(&mut self) -> &mut FileStore {
        &mut self.store
    }

    /// The system page cache manager.
    pub fn spcm(&self) -> &SystemPageCacheManager {
        &self.spcm
    }

    /// Mutable SPCM access (to open market accounts).
    pub fn spcm_mut(&mut self) -> &mut SystemPageCacheManager {
        &mut self.spcm
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.kernel.now()
    }

    /// Machine-level statistics.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Kernel statistics, for convenience.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// Turns on the upcall watchdog after construction (equivalent to
    /// [`MachineBuilder::watchdog`]).
    pub fn enable_watchdog(&mut self, config: WatchdogConfig) {
        self.watchdog = Some(Watchdog::new(config));
    }

    /// The upcall watchdog, if enabled.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Starts recording [`TraceStep`]s (the Figure 2 walkthrough).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes and clears the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceStep> {
        self.trace.take().unwrap_or_default()
    }

    // ----- event tracing / unified metrics ---------------------------------

    /// Turns on structured event tracing: one shared ring buffer of
    /// `capacity` events that the kernel, the SPCM/market and every
    /// registered manager (current and future) record into. Returns a
    /// handle to the shared buffer; clones of it observe the same events.
    pub fn enable_event_tracing(&mut self, capacity: usize) -> SharedTracer {
        let tracer = SharedTracer::with_capacity(capacity);
        self.kernel.set_tracer(tracer.clone());
        for mgr in self.managers.values_mut() {
            mgr.set_tracer(tracer.clone());
        }
        self.event_tracer = Some(tracer.clone());
        tracer
    }

    /// The shared event tracer, if tracing is on.
    pub fn event_tracer(&self) -> Option<&SharedTracer> {
        self.event_tracer.as_ref()
    }

    /// Builds the unified metrics registry: every layer's counters under
    /// stable dotted names — `kernel.*` (fault/migration/TLB/mapping
    /// counters), `spcm.*` and `market.*` (allocation and economy),
    /// `machine.*` (dispatch totals), `manager.<id>.*` (per-manager
    /// activity) and, when tracing is on, `trace.events.*` (per-kind event
    /// counts, immune to ring wraparound).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        self.kernel.export_metrics(&mut m);
        self.spcm.export_metrics(&mut m);
        if let Some(dog) = &self.watchdog {
            dog.export_metrics(&mut m);
        }
        m.set("machine.manager_calls", self.stats.manager_calls);
        m.set(
            "machine.manager_time_us",
            self.stats.manager_time.as_micros(),
        );
        for mgr in self.managers.values() {
            mgr.export_metrics(&mut m);
        }
        if let Some(t) = &self.event_tracer {
            for (kind, count) in t.kind_counts() {
                m.set(&format!("trace.events.{kind}"), count);
            }
            m.set("trace.recorded", t.total_recorded());
            m.set("trace.dropped", t.dropped());
        }
        m
    }

    // ----- manager registration ------------------------------------------------

    /// Registers a segment manager and returns its id.
    pub fn register_manager(&mut self, mut manager: Box<dyn SegmentManager>) -> ManagerId {
        let id = ManagerId(self.next_manager);
        self.next_manager += 1;
        manager.set_id(id);
        if let Some(t) = &self.event_tracer {
            manager.set_tracer(t.clone());
        }
        self.managers.insert(id.0, manager);
        id
    }

    /// Nominates the manager new segments are attached to by
    /// [`Machine::create_segment`].
    pub fn set_default_manager(&mut self, id: ManagerId) {
        self.default_manager = Some(id);
    }

    /// The current default manager, if any.
    pub fn default_manager(&self) -> Option<ManagerId> {
        self.default_manager
    }

    /// Borrows a registered manager (for reading its statistics).
    pub fn manager(&self, id: ManagerId) -> Option<&dyn SegmentManager> {
        self.managers.get(&id.0).map(|b| b.as_ref())
    }

    /// Runs `f` against a registered manager with the full environment —
    /// the hatch applications use to invoke manager-specific operations
    /// (marking pages discardable, requesting prefetch, pinning).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownManager`] if `id` is not registered;
    /// otherwise whatever `f` reports.
    pub fn with_manager<R>(
        &mut self,
        id: ManagerId,
        f: impl FnOnce(&mut dyn SegmentManager, &mut Env<'_>) -> Result<R, ManagerError>,
    ) -> Result<R, MachineError> {
        let mut mgr = self
            .managers
            .remove(&id.0)
            .ok_or(MachineError::UnknownManager(id))?;
        let mut env = Env {
            kernel: &mut self.kernel,
            store: &mut self.store,
            spcm: &mut self.spcm,
        };
        let result = f(mgr.as_mut(), &mut env);
        self.managers.insert(id.0, mgr);
        result.map_err(|source| MachineError::ManagerOp {
            manager: id,
            source,
        })
    }

    // ----- segment / file conveniences -------------------------------------------

    /// Creates a segment attached to the default manager.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownManager`] when no default manager is set,
    /// or kernel/manager failures.
    pub fn create_segment(
        &mut self,
        kind: SegmentKind,
        pages: u64,
    ) -> Result<SegmentId, MachineError> {
        let mgr = self
            .default_manager
            .ok_or(MachineError::UnknownManager(ManagerId(0)))?;
        self.create_segment_with(kind, pages, mgr, UserId::SYSTEM)
    }

    /// Creates a segment attached to an explicit manager and user.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownManager`], kernel or manager failures.
    pub fn create_segment_with(
        &mut self,
        kind: SegmentKind,
        pages: u64,
        manager: ManagerId,
        user: UserId,
    ) -> Result<SegmentId, MachineError> {
        if !self.managers.contains_key(&manager.0) {
            return Err(MachineError::UnknownManager(manager));
        }
        let seg = self.kernel.create_segment(kind, user, manager, 1, pages)?;
        self.with_manager(manager, |m, env| m.attach(env, seg))?;
        Ok(seg)
    }

    /// Opens a named backing file as a cached-file segment under the
    /// default manager.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownFile`] or segment-creation failures.
    pub fn open_file(&mut self, name: &str) -> Result<SegmentId, MachineError> {
        let file = self
            .store
            .find(name)
            .ok_or_else(|| MachineError::UnknownFile(name.to_string()))?;
        let size = self
            .store
            .size(file)
            .map_err(epcm_core::KernelError::from)?;
        let pages = size.div_ceil(BASE_PAGE_SIZE).max(1);
        self.create_segment(SegmentKind::CachedFile(file), pages)
    }

    /// Transfers management of a segment to another manager — the §2.2
    /// ownership-assumption protocol ("when an application starts
    /// execution, these segments are under the control of the default
    /// segment manager. The application manager ... then assumes
    /// management of these segments"). The old manager is notified as for
    /// a close (it writes back and surrenders the frames); the new
    /// manager attaches and simply refaults pages on demand.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownManager`], kernel or manager failures.
    pub fn transfer_segment(
        &mut self,
        seg: SegmentId,
        new_manager: ManagerId,
    ) -> Result<(), MachineError> {
        if !self.managers.contains_key(&new_manager.0) {
            return Err(MachineError::UnknownManager(new_manager));
        }
        let old = self.kernel.segment(seg)?.manager();
        if old == new_manager {
            return Ok(());
        }
        if self.managers.contains_key(&old.0) {
            self.stats.manager_calls += 1;
            self.with_manager(old, |m, env| m.segment_closed(env, seg))?;
        }
        self.with_manager(new_manager, |m, env| m.attach(env, seg))?;
        Ok(())
    }

    /// Closes a segment: notifies its manager (which writes back and
    /// reclaims frames) and destroys it.
    ///
    /// # Errors
    ///
    /// Kernel or manager failures.
    pub fn close_segment(&mut self, seg: SegmentId) -> Result<(), MachineError> {
        let mgr = self.kernel.segment(seg)?.manager();
        self.stats.manager_calls += 1;
        self.with_manager(mgr, |m, env| m.segment_closed(env, seg))?;
        self.kernel.destroy_segment(seg)?;
        Ok(())
    }

    // ----- forced reclamation (SPCM revocation) ---------------------------------

    /// Records `kind` on the shared event tracer, if tracing is on.
    fn emit(&self, kind: EventKind) {
        if let Some(t) = &self.event_tracer {
            t.record(TraceEvent::new(self.kernel.now().as_micros(), kind));
        }
    }

    /// The quarantine segment, created on first use: a system-owned frame
    /// pool where seized dirty pages whose backing store is dead are
    /// impounded with their data intact. Slot = frame index, so a
    /// destination slot is never occupied.
    fn quarantine_segment(&mut self) -> Result<SegmentId, MachineError> {
        if let Some(seg) = self.quarantine_seg {
            return Ok(seg);
        }
        let frames = self.kernel.frames().len() as u64;
        let seg = self.kernel.create_segment(
            SegmentKind::FramePool,
            UserId::SYSTEM,
            ManagerId::SYSTEM,
            1,
            frames,
        )?;
        self.quarantine_seg = Some(seg);
        Ok(seg)
    }

    /// Frames currently impounded in the quarantine segment.
    pub fn quarantined_frames(&self) -> u64 {
        self.quarantine_seg
            .and_then(|s| self.kernel.resident_pages(s).ok())
            .unwrap_or(0)
    }

    /// Demands `count` frames back from `manager` — the revocation
    /// protocol bankrupt or over-quota managers are subjected to.
    ///
    /// The manager is first asked politely through
    /// [`SegmentManager::reclaim`]. Compliance settles the demand (and
    /// forgives accumulated strikes). On refusal, failure or shortfall a
    /// demand with a grace deadline is registered with the SPCM; once the
    /// deadline passes — on a later `revoke` or [`Machine::tick`] — the
    /// frames are seized by force, the seizure fee is debited from the
    /// manager's market account, and after
    /// [`RevocationConfig::max_strikes`](crate::spcm::RevocationConfig)
    /// seizures the manager is destroyed outright.
    ///
    /// # Errors
    ///
    /// Kernel failures while seizing; a manager's own `reclaim` failure
    /// counts as refusal and is not propagated.
    pub fn revoke(&mut self, manager: ManagerId, count: u64) -> Result<(), MachineError> {
        let count = count.min(self.spcm.granted_to(manager));
        if count == 0 {
            return Ok(());
        }
        let demand = self
            .spcm
            .begin_revocation(manager, count, self.kernel.now());
        // Polite phase: the manager's own reclaim. A misbehaving manager
        // may under-deliver or fail outright; either way the demand stands
        // until the SPCM sees the frames back.
        let shortfall = demand.shortfall(self.spcm.granted_to(manager));
        if shortfall > 0 && self.managers.contains_key(&manager.0) {
            self.stats.manager_calls += 1;
            let started = self.kernel.now();
            let before = self.spcm.granted_to(manager);
            let claimed = self
                .with_manager(manager, |m, env| m.reclaim(env, shortfall))
                .unwrap_or(0);
            let elapsed = self.kernel.now().duration_since(started);
            // The grant ledger is the ground truth; a reply claiming more
            // compliance than the ledger saw is byzantine and is rejected,
            // fined, and escalated — the demand itself stands regardless.
            let actual = before.saturating_sub(self.spcm.granted_to(manager));
            if claimed > actual {
                self.note_byzantine(manager, claimed - actual)?;
            }
            self.observe_upcall(manager, UpcallKind::Reclaim, elapsed)?;
            if !self.managers.contains_key(&manager.0) {
                // Escalation already failed the manager over (or destroyed
                // it); nothing is left to demand frames from.
                return Ok(());
            }
        }
        if self.spcm.revocation_satisfied(manager) {
            self.spcm.clear_revocation(manager);
            return Ok(());
        }
        if self.kernel.now() >= demand.deadline {
            self.enforce_revocation(manager)?;
        }
        Ok(())
    }

    /// Settles an expired demand by force: seizes the shortfall, records
    /// the strike, and destroys the manager once strikes run out.
    fn enforce_revocation(&mut self, manager: ManagerId) -> Result<(), MachineError> {
        let Some(demand) = self.spcm.revocation(manager) else {
            return Ok(());
        };
        let shortfall = demand.shortfall(self.spcm.granted_to(manager));
        if shortfall == 0 {
            self.spcm.clear_revocation(manager);
            return Ok(());
        }
        let (seized, quarantined) = self.force_seize(manager, shortfall, false)?;
        let strikes = self
            .spcm
            .note_seized(manager, seized + quarantined, quarantined);
        self.emit(EventKind::ForcedReclaim {
            manager: manager.0,
            demanded: shortfall,
            seized,
            quarantined,
        });
        if quarantined > 0 {
            self.emit(EventKind::ManagerQuarantined {
                manager: manager.0,
                pages: quarantined,
                destroyed: false,
            });
        }
        if strikes >= self.spcm.revocation_config().max_strikes {
            self.destroy_manager(manager)?;
        }
        Ok(())
    }

    /// Takes up to `count` frames from `manager` without its cooperation.
    /// Pool frames and clean pages go first (straight back to the boot
    /// pool), then dirty pages — written back by the machine where the
    /// store allows, impounded in the quarantine segment where it does
    /// not. Pinned pages are spared unless `thorough` (destruction).
    /// Returns `(frames to the pool, frames quarantined)`.
    fn force_seize(
        &mut self,
        manager: ManagerId,
        count: u64,
        thorough: bool,
    ) -> Result<(u64, u64), MachineError> {
        // Single-frame segments only: compound pages cannot be split back
        // into boot home slots and are left for segment reassignment.
        let segs: Vec<SegmentId> = self
            .kernel
            .segment_ids()
            .filter(|&s| s != SegmentId::FRAME_POOL && self.quarantine_seg != Some(s))
            .filter(|&s| {
                self.kernel
                    .segment(s)
                    .map(|seg| seg.manager() == manager && seg.page_frames() == 1)
                    .unwrap_or(false)
            })
            .collect();
        let mut pool = Vec::new();
        let mut clean = Vec::new();
        let mut dirty = Vec::new();
        for &s in &segs {
            let seg = self.kernel.segment(s)?;
            let is_pool = matches!(seg.kind(), SegmentKind::FramePool);
            let file = match seg.kind() {
                SegmentKind::CachedFile(f) => Some(f),
                _ => None,
            };
            for (p, e) in seg.resident() {
                if e.flags.contains(PageFlags::PINNED) && !thorough {
                    continue;
                }
                let is_dirty = e.flags.contains(PageFlags::DIRTY);
                if is_pool {
                    pool.push((s, p, false, None));
                } else if is_dirty {
                    dirty.push((s, p, true, file));
                } else {
                    clean.push((s, p, false, file));
                }
            }
        }
        let mut seized = 0u64;
        let mut quarantined = 0u64;
        for (s, p, is_dirty, file) in pool.into_iter().chain(clean).chain(dirty) {
            if seized + quarantined >= count {
                break;
            }
            let written_back = match (is_dirty, file) {
                (false, _) => true,
                (true, Some(f)) => self.seize_writeback(manager, s, p, f)?,
                // Dirty anonymous memory: the swap mapping is private to
                // the evicted manager, so the data can only be impounded.
                (true, None) => false,
            };
            if written_back {
                self.return_home(s, p)?;
                seized += 1;
            } else {
                self.impound(s, p)?;
                quarantined += 1;
            }
        }
        Ok((seized, quarantined))
    }

    /// Migrates one seized page back to its home slot in the boot pool
    /// (home slot = frame index, so the destination is always free).
    fn return_home(&mut self, src: SegmentId, page: PageNumber) -> Result<(), MachineError> {
        let entry = self
            .kernel
            .segment(src)?
            .entry(page)
            .ok_or(epcm_core::KernelError::PageNotPresent { segment: src, page })?;
        let home = PageNumber(entry.frame.index() as u64);
        self.kernel.migrate_pages(
            src,
            SegmentId::FRAME_POOL,
            page,
            home,
            1,
            PageFlags::RW,
            PageFlags::DIRTY
                | PageFlags::REFERENCED
                | PageFlags::PINNED
                | PageFlags::MANAGER_A
                | PageFlags::MANAGER_B,
        )?;
        Ok(())
    }

    /// Impounds one dirty, unwritable page in the quarantine segment
    /// (slot = frame index), keeping its data and DIRTY flag intact.
    fn impound(&mut self, src: SegmentId, page: PageNumber) -> Result<(), MachineError> {
        let qseg = self.quarantine_segment()?;
        let entry = self
            .kernel
            .segment(src)?
            .entry(page)
            .ok_or(epcm_core::KernelError::PageNotPresent { segment: src, page })?;
        let slot = PageNumber(entry.frame.index() as u64);
        self.kernel.migrate_pages(
            src,
            qseg,
            page,
            slot,
            1,
            PageFlags::READ | PageFlags::PINNED,
            PageFlags::WRITE | PageFlags::REFERENCED | PageFlags::MANAGER_A | PageFlags::MANAGER_B,
        )?;
        Ok(())
    }

    /// The machine's own write-back of a seized dirty file page, with
    /// bounded retry on transient store faults. Returns whether the write
    /// stuck; `false` means the page must be quarantined.
    fn seize_writeback(
        &mut self,
        manager: ManagerId,
        seg: SegmentId,
        page: PageNumber,
        file: FileId,
    ) -> Result<bool, MachineError> {
        let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
        self.kernel.manager_read_page(seg, page, &mut buf)?;
        let offset = page.as_u64() * BASE_PAGE_SIZE;
        let mut attempt = 0u32;
        loop {
            match self.store.write(file, offset, &buf) {
                Ok(latency) => {
                    self.kernel.charge(latency);
                    return Ok(true);
                }
                Err(FileStoreError::Io {
                    file: f,
                    op,
                    write,
                    transient,
                }) => {
                    self.emit(EventKind::FaultInjected {
                        file: f.as_u32(),
                        op,
                        write,
                        transient,
                    });
                    if transient && attempt < SEIZE_RETRY_LIMIT {
                        attempt += 1;
                        self.emit(EventKind::IoRetry {
                            manager: manager.0,
                            file: f.as_u32(),
                            attempt,
                            write,
                        });
                        self.kernel
                            .charge(SEIZE_RETRY_BACKOFF * (1u64 << (attempt - 1)));
                        continue;
                    }
                    return Ok(false);
                }
                Err(_) => return Ok(false),
            }
        }
    }

    /// Destroys a manager that exhausted its strikes: seizes everything it
    /// holds (pinned pages included), reassigns its data segments to the
    /// default manager, destroys its emptied frame pools and unregisters
    /// it. The rest of the machine keeps running.
    ///
    /// # Errors
    ///
    /// Kernel failures, or the default manager failing to adopt a
    /// segment.
    pub fn destroy_manager(&mut self, manager: ManagerId) -> Result<(), MachineError> {
        let (seized, quarantined) = self.force_seize(manager, u64::MAX, true)?;
        if seized + quarantined > 0 {
            // Keep the seizure/quarantine ledger honest; the strike this
            // records is moot, the manager is going away.
            self.spcm
                .note_seized(manager, seized + quarantined, quarantined);
        }
        let segs: Vec<SegmentId> = self
            .kernel
            .segment_ids()
            .filter(|&s| s != SegmentId::FRAME_POOL && self.quarantine_seg != Some(s))
            .filter(|&s| {
                self.kernel
                    .segment(s)
                    .map(|seg| seg.manager() == manager)
                    .unwrap_or(false)
            })
            .collect();
        let heir = self.default_manager.filter(|&d| d != manager);
        for s in segs {
            let is_pool = matches!(self.kernel.segment(s)?.kind(), SegmentKind::FramePool);
            let residual = self.kernel.resident_pages(s)?;
            match heir {
                // Data segments move to the default manager; the grant
                // ledger follows any frames still resident (compound
                // pages the seizure could not split).
                Some(d) if !is_pool => {
                    self.stats.manager_calls += 1;
                    self.with_manager(d, |m, env| m.attach(env, s))?;
                    self.spcm.transfer_grant(manager, d, residual);
                }
                _ if residual == 0 => self.kernel.destroy_segment(s)?,
                // No heir and still resident: orphan it to the system so
                // the frames stay accounted for rather than leaking.
                _ => self.kernel.set_segment_manager(s, ManagerId::SYSTEM)?,
            }
        }
        self.managers.remove(&manager.0);
        if self.default_manager == Some(manager) {
            self.default_manager = None;
        }
        self.spcm.note_destroyed(manager);
        self.emit(EventKind::ManagerQuarantined {
            manager: manager.0,
            pages: quarantined,
            destroyed: true,
        });
        Ok(())
    }

    // ----- the watchdog and failover ---------------------------------------------

    /// Times one completed upcall against the watchdog (when enabled): a
    /// miss is traced and fined, and a manager that exhausts its strikes
    /// is failed over on the spot. No-op without a watchdog.
    ///
    /// # Errors
    ///
    /// Kernel failures during a triggered failover.
    fn observe_upcall(
        &mut self,
        manager: ManagerId,
        kind: UpcallKind,
        elapsed: Micros,
    ) -> Result<(), MachineError> {
        let Some(dog) = self.watchdog.as_mut() else {
            return Ok(());
        };
        let deadline = dog.config().deadline(kind);
        let fine = dog.config().miss_fine;
        let UpcallVerdict::Missed { .. } = dog.observe(manager.0, kind, elapsed) else {
            return Ok(());
        };
        let exhausted = dog.exhausted(manager.0);
        self.emit(EventKind::DeadlineMissed {
            manager: manager.0,
            upcall: kind.code(),
            deadline_us: deadline.as_micros(),
            elapsed_us: elapsed.as_micros(),
        });
        if let Some(market) = self.spcm.market_mut() {
            market.debit(manager, fine);
        }
        if exhausted {
            self.fail_over(manager)?;
        }
        Ok(())
    }

    /// Records a byzantine reclaim reply — the manager claimed `frames`
    /// more compliance than the grant ledger saw. The lie is traced and
    /// fined; under a watchdog it also counts as a strike, escalating to
    /// failover like a deadline miss.
    ///
    /// # Errors
    ///
    /// Kernel failures during a triggered failover.
    fn note_byzantine(&mut self, manager: ManagerId, frames: u64) -> Result<(), MachineError> {
        self.emit(EventKind::ByzantineReply {
            manager: manager.0,
            frames,
        });
        let fine = self
            .watchdog
            .as_ref()
            .map(|dog| dog.config().miss_fine)
            .unwrap_or(0.0);
        if fine > 0.0 {
            if let Some(market) = self.spcm.market_mut() {
                market.debit(manager, fine);
            }
        }
        let exhausted = match self.watchdog.as_mut() {
            Some(dog) => {
                dog.penalize(manager.0);
                dog.exhausted(manager.0)
            }
            None => false,
        };
        if exhausted {
            self.fail_over(manager)?;
        }
        Ok(())
    }

    /// Fails a manager over to the default manager: its data segments are
    /// atomically reassigned with a warm handoff (resident pages stay
    /// resident, dirty pages keep their DIRTY flag and flow through the
    /// heir's laundry), its free-pool frames go straight back to the boot
    /// pool, and its market account is settled. Falls back to
    /// [`Machine::destroy_manager`] when no distinct default manager
    /// exists. Returns the heir, or `None` if the manager was destroyed
    /// instead.
    ///
    /// # Errors
    ///
    /// Kernel failures, or the heir failing to adopt a segment.
    pub fn fail_over(&mut self, manager: ManagerId) -> Result<Option<ManagerId>, MachineError> {
        let heir = self
            .default_manager
            .filter(|&d| d != manager && self.managers.contains_key(&d.0));
        let Some(heir) = heir else {
            self.destroy_manager(manager)?;
            return Ok(None);
        };
        let segs: Vec<SegmentId> = self
            .kernel
            .segment_ids()
            .filter(|&s| s != SegmentId::FRAME_POOL && self.quarantine_seg != Some(s))
            .filter(|&s| {
                self.kernel
                    .segment(s)
                    .map(|seg| seg.manager() == manager)
                    .unwrap_or(false)
            })
            .collect();
        let mut moved_segments = 0u64;
        let mut moved_frames = 0u64;
        for s in segs {
            let is_pool = matches!(self.kernel.segment(s)?.kind(), SegmentKind::FramePool);
            if is_pool {
                // The dead manager's free pool: frames go straight home,
                // shrinking its grant in the same motion.
                let pages: Vec<PageNumber> =
                    self.kernel.segment(s)?.resident().map(|(p, _)| p).collect();
                self.spcm
                    .return_frames(&mut self.kernel, manager, s, &pages)?;
                self.kernel.destroy_segment(s)?;
            } else {
                // Warm handoff: the heir attaches without touching the
                // resident set, and the grant ledger follows the frames.
                let resident = self.kernel.resident_pages(s)?;
                self.stats.manager_calls += 1;
                self.with_manager(heir, |m, env| m.attach(env, s))?;
                self.spcm.transfer_grant(manager, heir, resident);
                moved_segments += 1;
                moved_frames += resident;
            }
        }
        self.managers.remove(&manager.0);
        self.spcm.note_failed_over(manager);
        if let Some(dog) = self.watchdog.as_mut() {
            dog.note_failed_over(manager.0);
        }
        self.emit(EventKind::ManagerFailedOver {
            manager: manager.0,
            heir: heir.0,
            segments: moved_segments,
            frames: moved_frames,
        });
        Ok(Some(heir))
    }

    // ----- the fault loop -------------------------------------------------------

    fn run_to_completion(
        &mut self,
        mut attempt: impl FnMut(&mut Kernel) -> Result<AccessOutcome, epcm_core::KernelError>,
    ) -> Result<(), MachineError> {
        let mut last: Option<FaultEvent> = None;
        for _ in 0..MAX_FAULT_RETRIES {
            match attempt(&mut self.kernel)? {
                AccessOutcome::Completed => return Ok(()),
                AccessOutcome::Fault(fault) => {
                    last = Some(fault);
                    self.dispatch(fault)?;
                }
            }
        }
        Err(MachineError::FaultLivelock(
            last.expect("retries imply at least one fault"),
        ))
    }

    /// Routes one fault to its manager, charging mode-appropriate dispatch
    /// costs (the difference between Table 1's two V++ rows).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownManager`] or the manager's failure.
    pub fn dispatch(&mut self, fault: FaultEvent) -> Result<(), MachineError> {
        let started = self.kernel.now();
        let mut mgr = self
            .managers
            .remove(&fault.manager.0)
            .ok_or(MachineError::UnknownManager(fault.manager))?;
        let mode = mgr.mode();
        if let Some(t) = &mut self.trace {
            t.push(TraceStep::FaultRaised(fault));
            t.push(TraceStep::Dispatched {
                manager: fault.manager,
                mode,
            });
        }
        let costs = self.kernel.costs().clone();
        // Both dispatch legs of the upcall cross a protection boundary
        // (kernel→manager delivery, manager→kernel resume); the ringed ABI
        // amortizes the per-op kernel calls *inside* the handler, never
        // these two.
        self.kernel.note_crossings(2);
        match mode {
            ManagerMode::FaultingProcess => self.kernel.charge(costs.fault_dispatch_inprocess),
            ManagerMode::Server => self
                .kernel
                .charge(costs.fault_dispatch_ipc + costs.server_demux),
        }
        self.stats.manager_calls += 1;
        let result = {
            let mut env = Env {
                kernel: &mut self.kernel,
                store: &mut self.store,
                spcm: &mut self.spcm,
            };
            mgr.handle_fault(&mut env, &fault)
        };
        match mode {
            ManagerMode::FaultingProcess => self.kernel.charge(costs.resume_direct),
            ManagerMode::Server => self
                .kernel
                .charge(costs.ipc_reply + costs.resume_via_kernel),
        }
        self.managers.insert(fault.manager.0, mgr);
        // Attribute the trap entry (charged before dispatch) to the fault too.
        let elapsed = self.kernel.now().duration_since(started) + costs.trap_entry;
        self.stats.manager_time += elapsed;
        if let Some(t) = &mut self.trace {
            t.push(TraceStep::Resumed { elapsed });
        }
        self.observe_upcall(fault.manager, UpcallKind::Fault, elapsed)?;
        result.map_err(|source| MachineError::Manager { fault, source })
    }

    // ----- application-visible accesses -----------------------------------------

    /// References one page, resolving faults through managers.
    ///
    /// # Errors
    ///
    /// Kernel errors, manager failures, or a fault livelock.
    pub fn touch(
        &mut self,
        seg: SegmentId,
        page: u64,
        access: AccessKind,
    ) -> Result<(), MachineError> {
        self.run_to_completion(|k| k.reference(seg, PageNumber(page), access))
    }

    /// Reads bytes from a segment (CPU loads), resolving faults.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch`].
    pub fn load(
        &mut self,
        seg: SegmentId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), MachineError> {
        self.run_to_completion(|k| k.load(seg, offset, buf))
    }

    /// Writes bytes to a segment (CPU stores), resolving faults.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch`].
    pub fn store_bytes(
        &mut self,
        seg: SegmentId,
        offset: u64,
        buf: &[u8],
    ) -> Result<(), MachineError> {
        self.run_to_completion(|k| k.store(seg, offset, buf))
    }

    /// UIO block read from a cached file, resolving faults.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch`], plus `NotAFile`.
    pub fn uio_read(
        &mut self,
        seg: SegmentId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), MachineError> {
        self.run_to_completion(|k| k.uio_read(seg, offset, buf))
    }

    /// UIO block write to a cached file, growing the segment for appends,
    /// resolving faults.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch`], plus `NotAFile`.
    pub fn uio_write(
        &mut self,
        seg: SegmentId,
        offset: u64,
        buf: &[u8],
    ) -> Result<(), MachineError> {
        let end_page = (offset + buf.len() as u64).div_ceil(BASE_PAGE_SIZE);
        if end_page > self.kernel.segment(seg)?.size_pages() {
            self.kernel.resize_segment(seg, end_page)?;
        }
        self.run_to_completion(|k| k.uio_write(seg, offset, buf))
    }

    /// Housekeeping: bills the memory market, revokes frames from
    /// bankrupt managers (forcibly, once their grace deadline passes),
    /// and gives every surviving manager its periodic tick.
    ///
    /// # Errors
    ///
    /// The first manager failure encountered.
    pub fn tick(&mut self) -> Result<(), MachineError> {
        let bankrupt = self
            .spcm
            .bill_traced(&self.kernel, self.event_tracer.as_ref());
        for mgr in bankrupt {
            let held = self.spcm.granted_to(mgr);
            self.revoke(mgr, held.div_ceil(2))?;
        }
        // Enforce demands whose grace deadline has passed unmet.
        let expired: Vec<ManagerId> = self
            .spcm
            .expired_revocations(self.kernel.now())
            .into_iter()
            .map(|(m, _)| m)
            .collect();
        for mgr in expired {
            self.enforce_revocation(mgr)?;
        }
        let ids: Vec<u32> = self.managers.keys().copied().collect();
        for id in ids {
            // A manager may have been destroyed by enforcement this tick.
            if self.managers.contains_key(&id) {
                let started = self.kernel.now();
                self.with_manager(ManagerId(id), |m, env| m.tick(env))?;
                let elapsed = self.kernel.now().duration_since(started);
                self.observe_upcall(ManagerId(id), UpcallKind::Tick, elapsed)?;
            }
        }
        Ok(())
    }

    /// Installs one epoch of a [`crate::market::PriceSchedule`] on the
    /// machine's market ledger (market allocation policy only), emitting
    /// one [`EventKind::PriceAdjusted`] per tier when tracing is
    /// enabled. Returns `false` when the machine runs no market.
    pub fn apply_tier_rents(&mut self, epoch: u32, rents: [f64; MemTier::COUNT]) -> bool {
        let Some(market) = self.spcm.market_mut() else {
            return false;
        };
        market.set_tier_rents(rents);
        for tier in MemTier::all() {
            self.emit(EventKind::PriceAdjusted {
                epoch,
                tier: tier.code(),
                rent: (rents[tier.index()] * 1000.0).round() as u64,
            });
        }
        true
    }

    /// Total frames resident per memory tier across every non-system
    /// manager, derived from the frame table. On a dram-only machine
    /// only index 0 is ever non-zero.
    pub fn resident_by_tier(&self) -> [u64; MemTier::COUNT] {
        let mut totals = [0u64; MemTier::COUNT];
        for (_, by_tier) in self.spcm.holdings_by_tier(&self.kernel) {
            for tier in MemTier::all() {
                totals[tier.index()] += by_tier[tier.index()];
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let m = Machine::builder(64).build();
        assert_eq!(m.kernel().frames().len(), 64);
        assert!(m.default_manager().is_none());
    }

    #[test]
    fn create_segment_without_default_manager_fails() {
        let mut m = Machine::new(64);
        assert!(matches!(
            m.create_segment(SegmentKind::Anonymous, 4),
            Err(MachineError::UnknownManager(_))
        ));
    }

    #[test]
    fn minimal_fault_roundtrip_with_default_manager() {
        let mut m = Machine::with_default_manager(256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 1);
        assert_eq!(m.stats().manager_calls, 1);
    }

    #[test]
    fn fault_trace_records_figure2_steps() {
        let mut m = Machine::with_default_manager(256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.enable_trace();
        m.touch(seg, 3, AccessKind::Write).unwrap();
        let trace = m.take_trace();
        assert!(matches!(trace[0], TraceStep::FaultRaised(_)));
        assert!(matches!(trace[1], TraceStep::Dispatched { .. }));
        assert!(matches!(trace[2], TraceStep::Resumed { .. }));
    }

    #[test]
    fn event_tracing_captures_fault_and_migrate() {
        let mut m = Machine::with_default_manager(256);
        let tracer = m.enable_event_tracing(1024);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        let counts = tracer.kind_counts();
        assert!(counts["fault"] >= 1, "counts: {counts:?}");
        assert!(counts["migrate"] >= 1, "counts: {counts:?}");
        // Timestamps are non-decreasing (one shared virtual clock).
        let events = tracer.events();
        assert!(events.windows(2).all(|w| w[0].time_us <= w[1].time_us));
    }

    #[test]
    fn metrics_unify_kernel_machine_and_manager_counters() {
        let mut m = Machine::with_default_manager(256);
        m.enable_event_tracing(1024);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        let before = m.metrics().snapshot();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        m.touch(seg, 1, AccessKind::Read).unwrap();
        let after = m.metrics().snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counter("kernel.faults.missing"), 2);
        assert_eq!(delta.counter("machine.manager_calls"), 2);
        // The default manager exports its per-manager counters.
        assert_eq!(delta.counter("manager.1.faults"), 2);
        // Trace event counts ride along in the same registry.
        assert_eq!(delta.counter("trace.events.fault"), 2);
        assert!(after.counter("machine.manager_time_us") > 0);
    }

    #[test]
    fn managers_registered_after_enabling_get_the_tracer() {
        let mut m = Machine::new(256);
        let tracer = m.enable_event_tracing(1024);
        let id = m.register_manager(Box::new(
            crate::default_manager::DefaultSegmentManager::server(),
        ));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert!(tracer.kind_counts().contains_key("fault"));
    }

    #[test]
    fn server_mode_fault_costs_table1_row2() {
        let mut m = Machine::with_default_manager(256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        // Warm up the manager's free pool so the measured fault is minimal.
        m.touch(seg, 0, AccessKind::Write).unwrap();
        let t0 = m.now();
        m.touch(seg, 1, AccessKind::Write).unwrap();
        let cost = m.now().duration_since(t0);
        assert_eq!(cost, m.kernel().costs().vpp_minimal_fault_server());
    }

    #[test]
    fn unknown_manager_fault_is_reported() {
        let mut m = Machine::new(64);
        // Create a segment naming a manager that was never registered.
        let seg = m
            .kernel_mut()
            .create_segment(SegmentKind::Anonymous, UserId::SYSTEM, ManagerId(42), 1, 4)
            .unwrap();
        match m.touch(seg, 0, AccessKind::Read) {
            Err(MachineError::UnknownManager(id)) => assert_eq!(id, ManagerId(42)),
            other => panic!("expected UnknownManager, got {other:?}"),
        }
    }

    #[test]
    fn store_and_load_roundtrip_through_faults() {
        let mut m = Machine::with_default_manager(256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        m.store_bytes(seg, 123, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        m.load(seg, 123, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn open_file_read_write_roundtrip() {
        let mut m = Machine::with_default_manager(1024);
        let content: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        m.store_mut().create_with("input", content.clone());
        let seg = m.open_file("input").unwrap();
        let mut buf = vec![0u8; content.len()];
        m.uio_read(seg, 0, &mut buf).unwrap();
        assert_eq!(buf, content);
        // Append past the current end grows the segment.
        m.uio_write(seg, content.len() as u64, b"tail").unwrap();
        let mut tail = [0u8; 4];
        m.uio_read(seg, content.len() as u64, &mut tail).unwrap();
        assert_eq!(&tail, b"tail");
    }

    #[test]
    fn open_unknown_file_fails() {
        let mut m = Machine::with_default_manager(64);
        assert!(matches!(
            m.open_file("ghost"),
            Err(MachineError::UnknownFile(_))
        ));
    }

    #[test]
    fn close_segment_returns_frames() {
        let mut m = Machine::with_default_manager(256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        for p in 0..8 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        m.close_segment(seg).unwrap();
        assert!(m.kernel().segment(seg).is_err());
        // Conservation: everything is back in the boot pool or the
        // manager's free segment.
        let kernel = m.kernel();
        let total: u64 = kernel
            .segment_ids()
            .map(|s| kernel.resident_pages(s).unwrap())
            .sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn manager_error_display_chain() {
        use std::error::Error;
        let e = MachineError::UnknownManager(ManagerId(5));
        assert!(e.to_string().contains("mgr#5"));
        assert!(e.source().is_none());
        let k = MachineError::from(epcm_core::KernelError::BootSegmentImmutable);
        assert!(k.source().is_some());
    }
}
