//! The default segment manager (§2.3) — the extended UCDS.
//!
//! Conventional programs never see external page-cache management: this
//! server-mode manager gives them a transparent demand-paged system built
//! entirely from the kernel's exported operations. It maintains a
//! free-page segment, fills file pages from the backing store, swaps
//! anonymous pages, batches allocation for file appends in 16 KB units
//! (the paper's noted difference from Ultrix), runs a clock replacement
//! policy driven by protection-fault reference sampling with batched
//! re-enabling, and keeps reclaimed-but-unreused frames rescuable (the
//! paper's migrate-it-back trick). On tiered machines the clock gains a
//! demotion stage: dirty second-chance victims on DRAM frames trade
//! places with spare lower-tier pool frames instead of paying writeback
//! I/O, and a bankrupt manager demotes cold pages at tick time to cut
//! its market bill rather than losing frames to forced seizure.
//!
//! With [`DefaultManagerConfig::async_writeback`] on, laundry cleaning
//! runs through an asynchronous pipeline: the dirty victim's bytes land
//! on the store at eviction time (so retry, quarantine and data
//! integrity are identical to the synchronous path), but the disk *time*
//! is booked as a [`epcm_sim::writeback::WritebackPipeline`] reservation
//! and billed when the completion fires. Faults, clock sampling and
//! demotion exchanges proceed while laundry drains in the background;
//! any consumer that needs a promised-free frame before its writeback
//! completed stalls to the completion instant (DESIGN.md §11).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use epcm_core::fault::{FaultEvent, FaultKind};
use epcm_core::flags::PageFlags;
use epcm_core::kernel::Kernel;
use epcm_core::ring::{
    CompletionEntry, CompletionRing, RingOp, SubmissionEntry, SubmissionRing, DEFAULT_RING_CAPACITY,
};
use epcm_core::tier::MemTier;
use epcm_core::types::{FrameId, ManagerId, PageNumber, SegmentId, SegmentKind, BASE_PAGE_SIZE};
use epcm_sim::clock::Micros;
use epcm_sim::disk::{FileId, FileStore, FileStoreError};
use epcm_sim::writeback::{TicketId, WritebackPipeline};
use epcm_trace::{EventKind, MetricsRegistry, SharedTracer, TraceEvent, TraceSink};

use crate::compress::{rle_compress, CompressStats};
use crate::manager::{Env, ManagerError, ManagerMode, SegmentManager};
use crate::policy::{ClockPolicy, Probe, ReplacementPolicy};
use crate::spcm::PhysConstraint;

/// Where a managed segment's page data lives when not resident.
#[derive(Debug, Clone)]
enum Backing {
    /// A cached file: pages are the file's blocks.
    File(FileId),
    /// Anonymous memory, swapped on demand; the swap file is created
    /// lazily, `swapped` lists pages with valid swap copies.
    Anonymous {
        swap: Option<FileId>,
        swapped: BTreeSet<u64>,
    },
}

#[derive(Debug, Clone)]
struct ManagedSegment {
    backing: Backing,
}

/// Outcome of one demotion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Demotion {
    /// The page now sits on a lower-tier frame.
    Done,
    /// The page is eligible but no lower-tier frame is pooled yet.
    NoTarget,
    /// The page is gone, or not on a DRAM frame.
    Ineligible,
}

/// Counters exposed for Table 3 and the extended analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultManagerStats {
    /// Faults handled, all kinds.
    pub faults: u64,
    /// Minimal faults (frame handed over with no fill).
    pub minimal_faults: u64,
    /// Pages filled from a backing file.
    pub file_fills: u64,
    /// Pages filled from swap.
    pub swap_ins: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
    /// Pages reclaimed by the replacement policy.
    pub reclaimed: u64,
    /// Reclaimed pages rescued before reuse (migrated straight back).
    pub laundry_rescues: u64,
    /// Protection faults that were reference-sampling events.
    pub sampling_faults: u64,
    /// Copy-on-write faults serviced.
    pub cow_faults: u64,
    /// Append faults that allocated a 16 KB batch.
    pub append_batches: u64,
    /// `MigratePages` invocations made by this manager while handling
    /// faults (Table 3 column 2).
    pub migrate_calls: u64,
    /// Pages demoted to a cheaper memory tier instead of being written
    /// back and evicted (tier exchange via `MigrateFrame`).
    pub demotions: u64,
    /// Hot pages promoted to a faster memory tier by the promotion
    /// ladder (tier exchange via `MigrateFrame`; 0 with the ladder off).
    pub promotions: u64,
}

/// Counters for the hot-page promotion ladder (all zero with
/// `promotion_budget` 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromotionStats {
    /// Heat events accumulated from the fault / sampling / writeback-
    /// completion streams for pages resident below DRAM.
    pub heat_events: u64,
    /// Promotions that landed on a spare free-pool DRAM frame.
    pub to_free: u64,
    /// Promotions that displaced a cold DRAM victim (exchange with a
    /// resident page, victim demoted to the hot page's old frame).
    pub swapped: u64,
    /// Promotion attempts dropped because no free DRAM frame and no
    /// cold unpinned DRAM victim existed that tick.
    pub no_target: u64,
}

/// Counters for the writeback path, synchronous and pipelined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WritebackStats {
    /// Total I/O time billed for completed writebacks, µs (page copy +
    /// store latency). Billed inline in synchronous mode, at completion
    /// in asynchronous mode; at in-flight window 1 the totals are equal
    /// by construction.
    pub billed_us: u64,
    /// Fault-path kernel time spent on dirty-victim writeback, µs.
    /// Drops to zero (absent injected-fault retry backoff) when the
    /// asynchronous pipeline is on.
    pub dirty_victim_us: u64,
    /// Times a consumer needed a promised-free frame before its
    /// writeback completed and had to wait for the disk.
    pub stalls: u64,
    /// Total kernel time charged for those stalls, µs.
    pub stall_us: u64,
    /// Laundry mappings evicted to satisfy free-slot demand. Their clean
    /// copy is already on the store, so no data is lost — only the
    /// no-I/O rescue opportunity.
    pub laundry_dropped: u64,
    /// Writebacks whose I/O has been billed (inline or via completion).
    pub completed: u64,
}

/// Counters for the retry-with-backoff backing-store I/O path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoRetryStats {
    /// Store operations attempted (first tries and retries).
    pub attempts: u64,
    /// Retries issued after a transient injected failure.
    pub retries: u64,
    /// Operations abandoned: a permanent failure, or transient failures
    /// outlasting the retry budget.
    pub gave_up: u64,
    /// Dirty pages pinned in place because their writeback target is dead.
    pub quarantined_pages: u64,
}

/// Tuning knobs for the default manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultManagerConfig {
    /// Free-pool size the manager tries to keep on hand.
    pub target_free: u64,
    /// Refill the pool when it drops below this.
    pub low_water: u64,
    /// Frames requested from the SPCM per refill.
    pub refill_batch: u64,
    /// Pages allocated per append fault (16 KB = 4 pages, §3.2).
    pub append_batch: u64,
    /// Contiguous pages re-enabled per sampling protection fault ("the
    /// default manager changes the protection on a number of contiguous
    /// pages, rather than a single page").
    pub protection_batch: u64,
    /// Resident pages protection-revoked per tick for reference sampling
    /// (0 disables sampling).
    pub sample_batch: u64,
    /// Retries per backing-store operation before giving up on a
    /// transiently failing device (0 = fail on first error).
    pub io_retry_limit: u32,
    /// Virtual-time delay before the first retry; doubles per attempt.
    pub io_retry_backoff: Micros,
    /// Upper bound on tier demotions per reclaim pass and per
    /// market-driven rebalance (0 disables demotion). Only meaningful on
    /// tiered machines; dram-only layouts never demote.
    pub demote_batch: u64,
    /// Clean dirty victims through the asynchronous writeback pipeline:
    /// the data lands on the store at eviction time, but the disk time
    /// is billed when the scheduled completion fires instead of being
    /// charged inline on the fault path.
    pub async_writeback: bool,
    /// Maximum writeback disk reservations outstanding at once in
    /// asynchronous mode (clamped to at least 1).
    pub writeback_window: usize,
    /// Disk arms serving the asynchronous writeback pipeline (clamped to
    /// at least 1).
    pub writeback_servers: usize,
    /// Route kernel page operations through the batched
    /// submission/completion rings ([`epcm_core::ring`]) instead of one
    /// synchronous call each. Batch sites (the 16-page protection
    /// restore, the sampling sweep) pay one doorbell crossing per batch;
    /// single-op sites enqueue and drain immediately, which charges
    /// exactly what the synchronous call would. Off by default: flat
    /// runs are byte-identical with the flag off.
    pub batched_abi: bool,
    /// Capacity of the submission and completion rings, in entries
    /// (clamped to at least 1; only meaningful with `batched_abi` on).
    pub ring_capacity: usize,
    /// Upper bound on hot-page promotions per tick (0 disables the
    /// promotion ladder entirely — no heat is tracked and no exchange is
    /// attempted, so default runs are byte-identical with pre-promotion
    /// builds). Only meaningful on tiered machines; dram-only layouts
    /// never promote.
    pub promotion_budget: u64,
    /// Access-heat a non-DRAM-resident page must accumulate (fault-time
    /// re-references, sampling hits, writeback completions) before it is
    /// a promotion candidate.
    pub promotion_threshold: u64,
}

impl Default for DefaultManagerConfig {
    fn default() -> Self {
        DefaultManagerConfig {
            target_free: 64,
            low_water: 8,
            refill_batch: 64,
            append_batch: 4,
            protection_batch: 16,
            sample_batch: 0,
            io_retry_limit: 4,
            io_retry_backoff: Micros::new(500),
            demote_batch: 8,
            async_writeback: false,
            writeback_window: 4,
            writeback_servers: 1,
            batched_abi: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            promotion_budget: 0,
            promotion_threshold: 2,
        }
    }
}

/// The default segment manager.
///
/// # Example
///
/// ```
/// use epcm_managers::{DefaultSegmentManager, Machine};
/// use epcm_core::{AccessKind, SegmentKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::with_default_manager(512);
/// let heap = machine.create_segment(SegmentKind::Anonymous, 16)?;
/// machine.touch(heap, 7, AccessKind::Write)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DefaultSegmentManager {
    id: ManagerId,
    mode: ManagerMode,
    config: DefaultManagerConfig,
    free_seg: Option<SegmentId>,
    managed: BTreeMap<u32, ManagedSegment>,
    policy: ClockPolicy,
    /// Reclaimed pages whose frames still sit (data intact) in the free
    /// segment: `(segment, page) -> free-segment slot` plus an insertion
    /// sequence number. FIFO reuse order via `laundry_order`; an order
    /// entry whose sequence no longer matches the map's is a tombstone
    /// left behind by a re-insert (the page was rescued, re-dirtied and
    /// reclaimed again) and is skipped on pop.
    laundry: BTreeMap<(u32, u64), LaundrySlot>,
    laundry_order: VecDeque<((u32, u64), u64)>,
    laundry_seq: u64,
    /// Incremental mirror of `laundry.values()` as slot -> entry count,
    /// so the free-slot picker and the append-run scanner check "is this
    /// slot keeping laundry alive?" in O(log n) instead of rebuilding a
    /// set from the whole map on every fault.
    laundry_slot_counts: BTreeMap<u64, usize>,
    /// Cursor for the sampling sweep.
    sample_cursor: (u32, u64),
    /// Dirty pages pinned in place after their writeback target died:
    /// `(segment, page)`. Their data is preserved but their frames are
    /// withdrawn from replacement.
    quarantined: BTreeSet<(u32, u64)>,
    stats: DefaultManagerStats,
    io_stats: IoRetryStats,
    /// Accounting for the CompressedRam tier backend (the `compress.rs`
    /// RLE scheme refitted as a tier): pages demoted into zram frames are
    /// compressed on the way in.
    zram_stats: CompressStats,
    /// The asynchronous laundry pipeline (idle in synchronous mode).
    wb: WritebackPipeline,
    /// Laundry entries whose writeback is still in flight ("promised
    /// free but not yet clean"): `(segment, page) -> (ticket, slot)`.
    /// Always a subset of `laundry`; consumers that would clobber the
    /// slot's frame must stall to the ticket's completion first.
    unclean: BTreeMap<(u32, u64), (TicketId, PageNumber)>,
    /// Reverse index of `unclean` for completion-time lookup.
    unclean_by_ticket: BTreeMap<TicketId, (u32, u64)>,
    wb_stats: WritebackStats,
    /// Batched-ABI submission ring; empty between handler runs (every
    /// enqueue site flushes before returning).
    sq: SubmissionRing,
    /// Batched-ABI completion ring, shared with the writeback pipeline's
    /// completion events.
    cq: CompletionRing,
    /// Next correlation token for submitted ring ops.
    ring_token: u64,
    /// Ops this manager has submitted through the ring.
    ring_submitted: u64,
    /// Access heat per non-DRAM-resident page, `(segment, page) ->
    /// count`, fed by fault-time re-references, sampling-window hits and
    /// writeback completions. Empty (never written) with the promotion
    /// ladder off. Entries for pages that leave residency or reach DRAM
    /// on their own are pruned lazily during the tick scan.
    heat: BTreeMap<(u32, u64), u64>,
    /// Ticket -> page map for in-flight writebacks, maintained only with
    /// the promotion ladder on, so a completion can heat its page even
    /// after a laundry rescue cleared the `unclean` mark.
    wb_keys: BTreeMap<TicketId, (SegmentId, PageNumber)>,
    promo_stats: PromotionStats,
    tracer: Option<SharedTracer>,
}

/// One laundry mapping: the free-segment slot holding the data and the
/// insertion sequence number that distinguishes it from tombstoned
/// `laundry_order` entries for the same key.
#[derive(Debug, Clone, Copy)]
struct LaundrySlot {
    slot: PageNumber,
    seq: u64,
}

impl DefaultSegmentManager {
    /// A default manager in the paper's deployed configuration: a separate
    /// server process.
    pub fn server() -> Self {
        DefaultSegmentManager::with_config(ManagerMode::Server, DefaultManagerConfig::default())
    }

    /// A manager executing in the faulting process — the cheap dispatch
    /// mode of Table 1 row 1, used by application-specific managers.
    pub fn in_process() -> Self {
        DefaultSegmentManager::with_config(
            ManagerMode::FaultingProcess,
            DefaultManagerConfig::default(),
        )
    }

    /// Full control over mode and tuning.
    pub fn with_config(mode: ManagerMode, config: DefaultManagerConfig) -> Self {
        let wb = WritebackPipeline::new(config.writeback_servers, config.writeback_window);
        let ring_cap = config.ring_capacity.max(1);
        DefaultSegmentManager {
            id: ManagerId(u32::MAX),
            mode,
            config,
            free_seg: None,
            managed: BTreeMap::new(),
            policy: ClockPolicy::new(),
            laundry: BTreeMap::new(),
            laundry_order: VecDeque::new(),
            laundry_seq: 0,
            laundry_slot_counts: BTreeMap::new(),
            sample_cursor: (0, 0),
            quarantined: BTreeSet::new(),
            stats: DefaultManagerStats::default(),
            io_stats: IoRetryStats::default(),
            zram_stats: CompressStats::default(),
            wb,
            unclean: BTreeMap::new(),
            unclean_by_ticket: BTreeMap::new(),
            wb_stats: WritebackStats::default(),
            sq: SubmissionRing::with_capacity(ring_cap),
            cq: CompletionRing::with_capacity(ring_cap),
            ring_token: 0,
            ring_submitted: 0,
            heat: BTreeMap::new(),
            wb_keys: BTreeMap::new(),
            promo_stats: PromotionStats::default(),
            tracer: None,
        }
    }

    /// Ops this manager has submitted through the batched ABI rings
    /// (0 with `batched_abi` off).
    pub fn ring_ops_submitted(&self) -> u64 {
        self.ring_submitted
    }

    /// Records `kind` at the current virtual time, if tracing is on.
    fn trace(&self, kernel: &Kernel, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.record(TraceEvent::new(kernel.now().as_micros(), kind));
        }
    }

    /// Manager counters.
    pub fn manager_stats(&self) -> DefaultManagerStats {
        self.stats
    }

    /// Retry/backoff counters for backing-store I/O.
    pub fn io_retry_stats(&self) -> IoRetryStats {
        self.io_stats
    }

    /// Writeback-path counters (billing, stalls, laundry drops).
    pub fn writeback_stats(&self) -> WritebackStats {
        self.wb_stats
    }

    /// Writebacks currently in flight in the asynchronous pipeline.
    pub fn writebacks_in_flight(&self) -> usize {
        self.wb.in_flight() + self.wb.queued()
    }

    /// High-water mark of concurrently issued writebacks over the run.
    pub fn writeback_inflight_peak(&self) -> u64 {
        self.wb.inflight_peak()
    }

    /// Dirty pages currently pinned in quarantine.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Compression accounting for pages demoted into CompressedRam frames.
    pub fn zram_stats(&self) -> CompressStats {
        self.zram_stats
    }

    /// Promotion-ladder counters (all zero with `promotion_budget` 0).
    pub fn promotion_stats(&self) -> PromotionStats {
        self.promo_stats
    }

    /// True when the hot-page promotion ladder is configured on.
    fn promotion_on(&self) -> bool {
        self.config.promotion_budget > 0
    }

    /// Accumulates one unit of access heat for `(seg, page)` if the
    /// promotion ladder is on and the page is currently resident on a
    /// non-DRAM frame. Called from the three event streams the ladder
    /// rides: fault-time re-references ([`Self::handle_missing`]),
    /// sampling-window hits ([`Self::handle_protection`]) and writeback
    /// completions ([`Self::writeback_completed`]).
    fn note_heat(&mut self, kernel: &Kernel, seg: SegmentId, page: PageNumber) {
        if !self.promotion_on() {
            return;
        }
        let tiers = *kernel.tiers();
        if tiers.is_dram_only() {
            return;
        }
        let Ok(segment) = kernel.segment(seg) else {
            return;
        };
        let Some(entry) = segment.entry(page) else {
            return;
        };
        if tiers.tier_of(entry.frame) == MemTier::Dram {
            return;
        }
        *self.heat.entry((seg.as_u32(), page.as_u64())).or_insert(0) += 1;
        self.promo_stats.heat_events += 1;
    }

    /// Runs one backing-store operation with bounded retry and exponential
    /// backoff on the virtual clock. Every injected fault and every retry
    /// is traced; a permanent failure (or a transient one outlasting the
    /// budget) is returned to the caller.
    fn store_io_with_retry(
        &mut self,
        env: &mut Env<'_>,
        write: bool,
        mut op: impl FnMut(&mut FileStore) -> Result<Micros, FileStoreError>,
    ) -> Result<Micros, ManagerError> {
        let limit = self.config.io_retry_limit;
        let mut attempt = 0u32;
        loop {
            self.io_stats.attempts += 1;
            let err = match op(env.store) {
                Ok(latency) => return Ok(latency),
                Err(e) => e,
            };
            let (file, op_idx, transient) = match &err {
                FileStoreError::Io {
                    file,
                    op,
                    transient,
                    ..
                } => (file.as_u32(), *op, *transient),
                _ => return Err(ManagerError::Store(err)),
            };
            self.trace(
                env.kernel,
                EventKind::FaultInjected {
                    file,
                    op: op_idx,
                    write,
                    transient,
                },
            );
            if transient && attempt < limit {
                attempt += 1;
                self.io_stats.retries += 1;
                self.trace(
                    env.kernel,
                    EventKind::IoRetry {
                        manager: self.id.0,
                        file,
                        attempt,
                        write,
                    },
                );
                env.kernel
                    .charge(self.config.io_retry_backoff * (1u64 << (attempt - 1).min(20)));
                continue;
            }
            self.io_stats.gave_up += 1;
            return Err(ManagerError::Store(err));
        }
    }

    /// Pins a dirty page whose backing store refuses its data: the frame
    /// is withdrawn from replacement but the data survives in memory.
    fn quarantine_in_place(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<(), ManagerError> {
        self.op_modify_flags(env, seg, page, 1, PageFlags::PINNED, PageFlags::empty())?;
        if self.quarantined.insert((seg.as_u32(), page.as_u64())) {
            self.io_stats.quarantined_pages += 1;
            self.trace(
                env.kernel,
                EventKind::ManagerQuarantined {
                    manager: self.id.0,
                    pages: self.quarantined.len() as u64,
                    destroyed: false,
                },
            );
        }
        Ok(())
    }

    /// The manager's free-page segment, once created.
    pub fn free_segment(&self) -> Option<SegmentId> {
        self.free_seg
    }

    fn free_seg(&mut self, env: &mut Env<'_>) -> Result<SegmentId, ManagerError> {
        if let Some(seg) = self.free_seg {
            return Ok(seg);
        }
        // Size the free segment to the whole machine: slots are cheap and
        // this lets the pool grow to whatever the SPCM will grant.
        let frames = env.kernel.frames().len() as u64;
        let seg = env.kernel.create_segment(
            SegmentKind::FramePool,
            epcm_core::UserId::SYSTEM,
            self.id,
            1,
            frames,
        )?;
        self.free_seg = Some(seg);
        Ok(seg)
    }

    fn free_count(&self, kernel: &Kernel) -> u64 {
        self.free_seg
            .and_then(|s| kernel.resident_pages(s).ok())
            .unwrap_or(0)
    }

    /// Ensures at least `want` frames sit in the free pool, requesting
    /// from the SPCM and then reclaiming managed pages if refused.
    fn ensure_free(&mut self, env: &mut Env<'_>, want: u64) -> Result<(), ManagerError> {
        let free_seg = self.free_seg(env)?;
        let have = self.free_count(env.kernel);
        if have >= want {
            return Ok(());
        }
        let ask = (want - have).max(self.config.refill_batch);
        let grant =
            env.spcm
                .request_frames(env.kernel, self.id, free_seg, ask, PhysConstraint::Any)?;
        if self.free_count(env.kernel) >= want {
            return Ok(());
        }
        let _ = grant;
        // SPCM would not (fully) provide: reclaim our own pages.
        let deficit = want - self.free_count(env.kernel);
        self.reclaim_into_pool(env, deficit)?;
        if self.free_count(env.kernel) >= want {
            Ok(())
        } else {
            Err(ManagerError::OutOfFrames { manager: self.id })
        }
    }

    /// Records `key`'s data surviving in free-segment `slot`. Inserting
    /// over an existing key releases the old slot and bumps the sequence
    /// number, turning the old `laundry_order` entry into a tombstone
    /// that [`Self::oldest_live_laundry`] skips — the pop path can never
    /// mis-treat the stale entry as live.
    fn laundry_insert(&mut self, key: (u32, u64), slot: PageNumber) {
        self.laundry_seq += 1;
        let seq = self.laundry_seq;
        if let Some(old) = self.laundry.insert(key, LaundrySlot { slot, seq }) {
            self.laundry_slot_released(old.slot);
        }
        self.laundry_order.push_back((key, seq));
        *self.laundry_slot_counts.entry(slot.as_u64()).or_insert(0) += 1;
    }

    /// Removes a laundry entry, keeping the slot-count mirror in sync and
    /// clearing any in-flight writeback mark (the frame is leaving the
    /// pool's custody; the ticket itself still bills at completion).
    fn laundry_remove(&mut self, key: &(u32, u64)) -> Option<PageNumber> {
        let entry = self.laundry.remove(key)?;
        self.laundry_slot_released(entry.slot);
        if let Some((ticket, _)) = self.unclean.remove(key) {
            self.unclean_by_ticket.remove(&ticket);
        }
        Some(entry.slot)
    }

    /// The oldest laundry key whose order entry is still live, discarding
    /// tombstones (entries superseded by a re-insert) from the front of
    /// the order queue. The returned key stays at the queue front.
    fn oldest_live_laundry(&mut self) -> Option<(u32, u64)> {
        while let Some(&(key, seq)) = self.laundry_order.front() {
            if self.laundry.get(&key).is_some_and(|e| e.seq == seq) {
                return Some(key);
            }
            self.laundry_order.pop_front();
        }
        None
    }

    /// Marks `key`'s laundry slot as promised-free but not yet clean:
    /// its writeback `ticket` is still in flight. A re-evict of the same
    /// key supersedes the old mark (the old ticket still bills).
    fn register_unclean(&mut self, key: (u32, u64), ticket: TicketId, slot: PageNumber) {
        if let Some((old, _)) = self.unclean.insert(key, (ticket, slot)) {
            self.unclean_by_ticket.remove(&old);
        }
        self.unclean_by_ticket.insert(ticket, key);
    }

    fn laundry_slot_released(&mut self, slot: PageNumber) {
        if let Some(n) = self.laundry_slot_counts.get_mut(&slot.as_u64()) {
            *n -= 1;
            if *n == 0 {
                self.laundry_slot_counts.remove(&slot.as_u64());
            }
        }
    }

    /// Takes one free slot, evicting the oldest laundry entry if every
    /// free frame is acting as a laundry page.
    fn take_free_slot(&mut self, env: &mut Env<'_>) -> Result<PageNumber, ManagerError> {
        let free_seg = self.free_seg(env)?;
        self.ensure_free(env, 1)?;
        let pick = env
            .kernel
            .segment(free_seg)?
            .resident()
            .map(|(p, _)| p)
            .find(|p| !self.laundry_slot_counts.contains_key(&p.as_u64()));
        if let Some(p) = pick {
            return Ok(p);
        }
        // All free frames hold laundry: evict the oldest live mapping.
        // Its clean copy is already on the store (written at reclaim
        // time), so no data is lost — but an in-flight writeback must
        // finish before the frame's bytes are clobbered, and the evicted
        // rescue opportunity is traced and counted, never silent.
        while let Some(key) = self.oldest_live_laundry() {
            self.laundry_order.pop_front();
            self.stall_until_clean(env, key);
            if let Some(slot) = self.laundry_remove(&key) {
                self.wb_stats.laundry_dropped += 1;
                self.trace(
                    env.kernel,
                    EventKind::LaundryEvicted {
                        manager: self.id.0,
                        segment: key.0 as u64,
                        page: key.1,
                    },
                );
                return Ok(slot);
            }
        }
        Err(ManagerError::OutOfFrames { manager: self.id })
    }

    /// If `key`'s laundry writeback is still in flight, waits (charging
    /// the kernel clock) until its disk reservation completes, then
    /// drains due completions. Callers invoke this before reusing or
    /// clobbering a promised-free frame.
    fn stall_until_clean(&mut self, env: &mut Env<'_>, key: (u32, u64)) {
        if let Some(&(ticket, _)) = self.unclean.get(&key) {
            let now = env.kernel.now();
            if let Some(done) = self.wb.force_completion_time(now, ticket) {
                let wait = done.saturating_duration_since(now);
                if wait > Micros::ZERO {
                    env.kernel.charge(wait);
                }
                self.wb_stats.stalls += 1;
                self.wb_stats.stall_us += wait.as_micros();
            }
        }
        self.drain_writebacks(env);
    }

    /// Books one writeback completion: bills its service time and market
    /// I/O charge, clears the "promised free but not yet clean" mark, and
    /// traces it. Shared by the direct poll path and the completion-ring
    /// path — the booking is identical either way.
    fn writeback_completed(&mut self, env: &mut Env<'_>, ticket: TicketId, service: Micros) {
        self.wb_stats.completed += 1;
        self.wb_stats.billed_us += service.as_micros();
        env.spcm.charge_manager_io(self.id, 1);
        if let Some(key) = self.unclean_by_ticket.remove(&ticket) {
            self.unclean.remove(&key);
        }
        // Promotion heat from the completion ring: a page that is
        // re-resident below DRAM by the time its writeback completes was
        // rescued while the disk was still in flight — it is cycling,
        // the strongest re-reference signal the event stream carries.
        if let Some((s, p)) = self.wb_keys.remove(&ticket) {
            self.note_heat(env.kernel, s, p);
        }
        self.trace(
            env.kernel,
            EventKind::WritebackCompleted {
                manager: self.id.0,
                ticket,
                service_us: service.as_micros(),
            },
        );
    }

    /// Bills every writeback completion due by now: its service time and
    /// market I/O charge land here, not at issue, and its "promised free
    /// but not yet clean" mark clears. With the batched ABI on, the
    /// pipeline's completions ride the completion ring
    /// ([`CompletionEntry::Writeback`]) before being reaped, so a
    /// batched manager has one place completions of every kind arrive.
    fn drain_writebacks(&mut self, env: &mut Env<'_>) {
        if self.wb.is_idle() {
            return;
        }
        let now = env.kernel.now();
        for c in self.wb.poll(now) {
            if self.config.batched_abi
                && self
                    .cq
                    .push(CompletionEntry::Writeback {
                        ticket: c.ticket,
                        service: c.service,
                    })
                    .is_ok()
            {
                continue;
            }
            // Unbatched mode, or the completion ring is full: book it
            // directly (never drop a completion).
            self.writeback_completed(env, c.ticket, c.service);
        }
        if self.config.batched_abi {
            let mut first_err = None;
            self.reap_completions(env, &mut first_err);
            debug_assert!(first_err.is_none(), "op completion outside a flush");
        }
    }

    /// Pops every completion-ring entry: writeback completions are
    /// booked, the first failed op is recorded for the caller, cancelled
    /// entries need no action (their ops never executed — resubmission
    /// is the enqueue site's choice, and every current site propagates
    /// the batch's error instead).
    fn reap_completions(&mut self, env: &mut Env<'_>, first_err: &mut Option<ManagerError>) {
        while let Some(entry) = self.cq.pop() {
            match entry {
                CompletionEntry::Op { result: Ok(_), .. } | CompletionEntry::Cancelled { .. } => {}
                CompletionEntry::Op { result: Err(e), .. } => {
                    if first_err.is_none() {
                        *first_err = Some(ManagerError::Kernel(e));
                    }
                }
                CompletionEntry::Writeback { ticket, service } => {
                    self.writeback_completed(env, ticket, service);
                }
            }
        }
    }

    /// Enqueues one op on the submission ring, flushing first if it is
    /// full (so an enqueue never fails and never loses an entry).
    fn ring_submit(&mut self, env: &mut Env<'_>, op: RingOp) -> Result<(), ManagerError> {
        if self.sq.is_full() {
            self.ring_flush(env)?;
        }
        let token = self.ring_token;
        self.ring_token += 1;
        self.ring_submitted += 1;
        self.sq
            .push(SubmissionEntry { token, op })
            .expect("submission ring has room after flush");
        Ok(())
    }

    /// Rings the kernel's doorbell until the submission ring drains and
    /// reaps every completion. One non-empty batch charges a single
    /// `kernel_call` entry; each op then runs at its service cost. The
    /// first op failure is returned — after the whole batch has been
    /// reaped — matching the synchronous path, which also stops at the
    /// first failing call (the kernel cancels the batch's remainder).
    fn ring_flush(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        let mut first_err = None;
        while !self.sq.is_empty() {
            if env.kernel.drain_ring(&mut self.sq, &mut self.cq) == 0 {
                break; // unreachable: the reap below always frees the cq
            }
            self.reap_completions(env, &mut first_err);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// One op through the ring: enqueue plus an immediate flush. A
    /// single-entry batch charges exactly what the synchronous call
    /// would (one doorbell + the op's service cost), so sites that must
    /// observe an op's effect before their next statement ride the ring
    /// without cost or state divergence.
    fn ring_call(&mut self, env: &mut Env<'_>, op: RingOp) -> Result<(), ManagerError> {
        self.ring_submit(env, op)?;
        self.ring_flush(env)
    }

    /// `MigratePages` via the configured ABI: a synchronous kernel call,
    /// or a single-entry ring batch with `batched_abi` on.
    #[allow(clippy::too_many_arguments)]
    fn op_migrate_pages(
        &mut self,
        env: &mut Env<'_>,
        src: SegmentId,
        dst: SegmentId,
        src_page: PageNumber,
        dst_page: PageNumber,
        count: u64,
        set: PageFlags,
        clear: PageFlags,
    ) -> Result<(), ManagerError> {
        if self.config.batched_abi {
            self.ring_call(
                env,
                RingOp::MigratePages {
                    src,
                    dst,
                    src_page,
                    dst_page,
                    count,
                    set,
                    clear,
                },
            )
        } else {
            env.kernel
                .migrate_pages(src, dst, src_page, dst_page, count, set, clear)?;
            Ok(())
        }
    }

    /// `MigrateFrame` (the tier exchange) via the configured ABI.
    fn op_migrate_frame(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        dst: FrameId,
    ) -> Result<(), ManagerError> {
        if self.config.batched_abi {
            self.ring_call(env, RingOp::MigrateFrame { seg, page, dst })
        } else {
            env.kernel.migrate_frame(seg, page, dst)?;
            Ok(())
        }
    }

    /// `ModifyPageFlags` via the configured ABI, executed immediately.
    fn op_modify_flags(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        count: u64,
        set: PageFlags,
        clear: PageFlags,
    ) -> Result<(), ManagerError> {
        if self.config.batched_abi {
            self.ring_call(
                env,
                RingOp::ModifyPageFlags {
                    seg,
                    page,
                    count,
                    set,
                    clear,
                },
            )
        } else {
            env.kernel.modify_page_flags(seg, page, count, set, clear)?;
            Ok(())
        }
    }

    /// `ModifyPageFlags`, deferred onto the ring with `batched_abi` on.
    /// Batch sites (protection restore, sampling sweep) call this in
    /// their loops and [`Self::ring_flush`] once at the end, collapsing
    /// n crossings into one.
    fn op_modify_flags_deferred(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        count: u64,
        set: PageFlags,
        clear: PageFlags,
    ) -> Result<(), ManagerError> {
        if self.config.batched_abi {
            self.ring_submit(
                env,
                RingOp::ModifyPageFlags {
                    seg,
                    page,
                    count,
                    set,
                    clear,
                },
            )
        } else {
            env.kernel.modify_page_flags(seg, page, count, set, clear)?;
            Ok(())
        }
    }

    /// Drives the writeback pipeline to empty — the fsync-like barrier.
    /// Waits (on the kernel clock) for the last in-flight reservation,
    /// then bills everything drained. A no-op in synchronous mode.
    pub fn flush_writebacks(&mut self, env: &mut Env<'_>) {
        let now = env.kernel.now();
        if let Some(done) = self.wb.quiesce(now) {
            let wait = done.saturating_duration_since(now);
            if wait > Micros::ZERO {
                env.kernel.charge(wait);
            }
        }
        self.drain_writebacks(env);
    }

    /// Reclaims `count` pages from managed segments into the free pool,
    /// writing dirty data back first. Reclaimed pages stay rescuable until
    /// their frame is reused. Dirty victims whose store is dead are
    /// quarantined in place and another victim is tried, so a failing
    /// device degrades capacity instead of wedging replacement.
    fn reclaim_into_pool(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        let free_seg = self.free_seg(env)?;
        let mut reclaimed = 0;
        let mut demoted = 0;
        let mut deferred: VecDeque<(SegmentId, PageNumber)> = VecDeque::new();
        let mut attempts = 0;
        while reclaimed < count && attempts < count * 2 + 8 + demoted {
            attempts += 1;
            let victim = {
                let kernel = &mut *env.kernel;
                self.policy.select_victim(&mut |s, p| {
                    match kernel.get_page_attributes(s, p, 1) {
                        Ok(attrs) if attrs[0].present => {
                            let flags = attrs[0].flags;
                            if flags.contains(PageFlags::PINNED) {
                                Probe::Pinned
                            } else if flags.contains(PageFlags::REFERENCED) {
                                // Second chance: clear the bit.
                                let _ = kernel.modify_page_flags(
                                    s,
                                    p,
                                    1,
                                    PageFlags::empty(),
                                    PageFlags::REFERENCED,
                                );
                                Probe::Referenced
                            } else {
                                Probe::NotReferenced
                            }
                        }
                        _ => Probe::Gone,
                    }
                })
            };
            let Some((seg, page)) = victim else { break };
            // Demotion stage of the clock: a dirty second-chance victim
            // sitting on a DRAM frame trades frames with a spare
            // lower-tier pool slot instead of paying writeback I/O. Its
            // data stays resident one rung down the ladder; the DRAM
            // frame surfaces in the free pool for the next allocation.
            // The clock tends to sweep DRAM-framed pages before it pools
            // any lower-tier frame, so an eligible victim with no partner
            // yet is deferred — it demotes as soon as a later eviction
            // pools one — rather than evicted.
            if demoted + (deferred.len() as u64) < self.config.demote_batch {
                let dirty = env
                    .kernel
                    .get_page_attributes(seg, page, 1)
                    .ok()
                    .is_some_and(|a| a[0].present && a[0].flags.contains(PageFlags::DIRTY));
                if dirty {
                    match self.try_demote(env, free_seg, seg, page)? {
                        Demotion::Done => {
                            demoted += 1;
                            continue;
                        }
                        Demotion::NoTarget => {
                            deferred.push_back((seg, page));
                            continue;
                        }
                        Demotion::Ineligible => {}
                    }
                }
            }
            if self.evict(env, free_seg, seg, page)? {
                reclaimed += 1;
                // That eviction may have pooled a lower-tier frame:
                // drain the deferred demotions while partners last.
                while let Some(&(dseg, dpage)) = deferred.front() {
                    match self.try_demote(env, free_seg, dseg, dpage)? {
                        Demotion::Done => {
                            deferred.pop_front();
                            demoted += 1;
                        }
                        Demotion::Ineligible => {
                            deferred.pop_front();
                        }
                        Demotion::NoTarget => break,
                    }
                }
            }
        }
        if reclaimed > 0 {
            self.trace(
                env.kernel,
                EventKind::Reclaim {
                    manager: self.id.0,
                    frames: reclaimed,
                    forced: false,
                },
            );
        }
        Ok(reclaimed)
    }

    /// Writes back (if dirty) and migrates one page into the free pool.
    /// Returns whether a frame was actually freed: a dirty page whose
    /// store is permanently failing is quarantined in place instead
    /// (`false`), leaving the caller to pick another victim.
    fn evict(
        &mut self,
        env: &mut Env<'_>,
        free_seg: SegmentId,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<bool, ManagerError> {
        let entry = env
            .kernel
            .segment(seg)?
            .entry(page)
            .ok_or(epcm_core::KernelError::PageNotPresent { segment: seg, page })?;
        let mut ticket = None;
        if entry.flags.contains(PageFlags::DIRTY) {
            let before = env.kernel.now();
            let outcome = if self.config.async_writeback {
                self.writeback_async(env, seg, page)
            } else {
                self.writeback(env, seg, page).map(|()| None)
            };
            match outcome {
                Ok(t) => ticket = t,
                Err(ManagerError::Store(FileStoreError::Io { .. })) => {
                    self.quarantine_in_place(env, seg, page)?;
                    return Ok(false);
                }
                Err(other) => return Err(other),
            }
            // Fault-path time spent on this dirty victim: copy + latency
            // inline in sync mode; only injected-fault retry backoff in
            // async mode (the disk time bills at completion instead).
            self.wb_stats.dirty_victim_us += env.kernel.now().duration_since(before).as_micros();
        }
        // Destination: first empty slot in the free segment.
        let slot = first_empty_slot(env.kernel, free_seg)?;
        self.op_migrate_pages(
            env,
            seg,
            free_seg,
            page,
            slot,
            1,
            PageFlags::RW,
            PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
        )?;
        let key = (seg.as_u32(), page.as_u64());
        self.laundry_insert(key, slot);
        if let Some(t) = ticket {
            self.register_unclean(key, t, slot);
        }
        self.stats.reclaimed += 1;
        Ok(true)
    }

    /// Picks a free-pool slot whose frame sits below DRAM as the tier
    /// exchange partner, preferring SlowMem over CompressedRam (demotion
    /// walks the ladder one rung at a time) and laundry-free slots over
    /// laundered ones (the exchange clobbers the slot's bytes, so a
    /// laundered slot costs its rescue entries). Returns the slot, its
    /// frame, and the frame's tier.
    fn demotion_target(
        &self,
        kernel: &Kernel,
        free_seg: SegmentId,
    ) -> Option<(PageNumber, FrameId, MemTier)> {
        let tiers = *kernel.tiers();
        let seg = kernel.segment(free_seg).ok()?;
        let mut best: Option<(u32, PageNumber, FrameId, MemTier)> = None;
        for (p, e) in seg.resident() {
            let tier = tiers.tier_of(e.frame);
            if tier == MemTier::Dram {
                continue;
            }
            // A slot whose laundry writeback is still in flight is not
            // clobberable without stalling on the disk; prefer any other
            // partner outright.
            if self
                .unclean
                .values()
                .any(|&(_, s)| s.as_u64() == p.as_u64())
            {
                continue;
            }
            let laundered = self.laundry_slot_counts.contains_key(&p.as_u64());
            let score = u32::from(laundered) * 2 + u32::from(tier != MemTier::SlowMem);
            if score == 0 {
                return Some((p, e.frame, tier));
            }
            if best.is_none_or(|(s, ..)| score < s) {
                best = Some((score, p, e.frame, tier));
            }
        }
        best.map(|(_, p, f, t)| (p, f, t))
    }

    /// Attempts to demote `page` — resident on a DRAM frame — into a
    /// spare lower-tier free-pool frame via a kernel tier exchange. The
    /// page stays resident (only its physical frame changes), so no
    /// writeback I/O happens and the manager's DRAM bill shrinks.
    fn try_demote(
        &mut self,
        env: &mut Env<'_>,
        free_seg: SegmentId,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<Demotion, ManagerError> {
        let tiers = *env.kernel.tiers();
        if tiers.is_dram_only() {
            return Ok(Demotion::Ineligible);
        }
        let Some(entry) = env.kernel.segment(seg)?.entry(page) else {
            return Ok(Demotion::Ineligible);
        };
        if tiers.tier_of(entry.frame) != MemTier::Dram {
            return Ok(Demotion::Ineligible);
        }
        let Some((slot, dst, dst_tier)) = self.demotion_target(env.kernel, free_seg) else {
            return Ok(Demotion::NoTarget);
        };
        // The exchange overwrites the slot's bytes: any laundry it holds
        // must be dropped first (the same invariant take_free_slot uses —
        // laundered data was already written back at reclaim time), and
        // an in-flight writeback must complete before the clobber.
        self.drop_slot_laundry(env, slot);
        if dst_tier == MemTier::CompressedRam {
            // The refitted compress.rs scheme backs this tier: account
            // the RLE work a real zram device would do on the way in.
            let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
            env.kernel.manager_read_page(seg, page, &mut buf)?;
            let stored = rle_compress(&buf).len() as u64;
            self.zram_stats.compressed += 1;
            self.zram_stats.raw_bytes += BASE_PAGE_SIZE;
            self.zram_stats.stored_bytes += stored;
        }
        self.op_migrate_frame(env, seg, page, dst)?;
        self.stats.demotions += 1;
        Ok(Demotion::Done)
    }

    /// Demotes up to `budget` cold (unreferenced, unpinned) DRAM pages
    /// into spare lower-tier pool frames. This is the bankrupt manager's
    /// survival path: holdings shift to cheaper tiers, the tiered bill
    /// shrinks, and no data is lost to a forced seizure.
    fn rebalance_demote(&mut self, env: &mut Env<'_>, budget: u64) -> Result<u64, ManagerError> {
        if budget == 0 || env.kernel.tiers().is_dram_only() {
            return Ok(0);
        }
        let free_seg = self.free_seg(env)?;
        let tiers = *env.kernel.tiers();
        let segs: Vec<SegmentId> = env
            .kernel
            .segment_ids()
            .filter(|s| self.managed.contains_key(&s.as_u32()))
            .collect();
        let mut demoted = 0;
        'segments: for seg in segs {
            let candidates: Vec<PageNumber> = match env.kernel.segment(seg) {
                Ok(segment) => segment
                    .resident()
                    .filter(|(_, e)| {
                        !e.flags.contains(PageFlags::PINNED)
                            && !e.flags.contains(PageFlags::REFERENCED)
                            && tiers.tier_of(e.frame) == MemTier::Dram
                    })
                    .map(|(p, _)| p)
                    .collect(),
                Err(_) => continue,
            };
            for page in candidates {
                if demoted >= budget {
                    break 'segments;
                }
                if self.try_demote(env, free_seg, seg, page)? == Demotion::Done {
                    demoted += 1;
                }
            }
        }
        Ok(demoted)
    }

    /// Drops every laundry entry held by free-pool `slot` before its
    /// bytes are clobbered by a tier exchange: an in-flight writeback
    /// completes first (the clean copy must land on the store), then the
    /// rescue mapping is removed — laundered data was already written
    /// back at reclaim time, so nothing is lost but the no-I/O rescue
    /// opportunity.
    fn drop_slot_laundry(&mut self, env: &mut Env<'_>, slot: PageNumber) {
        let stale: Vec<(u32, u64)> = self
            .laundry
            .iter()
            .filter(|(_, e)| e.slot.as_u64() == slot.as_u64())
            .map(|(key, _)| *key)
            .collect();
        for key in stale {
            self.stall_until_clean(env, key);
            self.laundry_remove(&key);
        }
    }

    /// Picks a free-pool slot whose frame is DRAM as the promotion
    /// exchange partner — the mirror of [`Self::demotion_target`].
    /// Laundry-free slots are preferred over laundered ones (the
    /// exchange clobbers the slot's bytes, costing rescue entries), and
    /// slots whose writeback is still in flight are skipped outright.
    fn promotion_target(
        &self,
        kernel: &Kernel,
        free_seg: SegmentId,
    ) -> Option<(PageNumber, FrameId)> {
        let tiers = *kernel.tiers();
        let seg = kernel.segment(free_seg).ok()?;
        let mut fallback: Option<(PageNumber, FrameId)> = None;
        for (p, e) in seg.resident() {
            if tiers.tier_of(e.frame) != MemTier::Dram {
                continue;
            }
            if self
                .unclean
                .values()
                .any(|&(_, s)| s.as_u64() == p.as_u64())
            {
                continue;
            }
            if !self.laundry_slot_counts.contains_key(&p.as_u64()) {
                return Some((p, e.frame));
            }
            if fallback.is_none() {
                fallback = Some((p, e.frame));
            }
        }
        fallback
    }

    /// The coldest DRAM victim for a promotion swap: the first resident,
    /// unpinned, clock-unreferenced page on a DRAM frame, scanning
    /// managed segments in id order (deterministic). Pages the clock has
    /// seen referenced keep their frames — promotion never steals hot
    /// DRAM — but, exactly like the reclaim probe, they get a second
    /// chance: when every DRAM page carries its reference bit, the scan
    /// strips the bits and returns nothing, so a page that stays cold
    /// is pickable on the next pass while anything re-referenced in
    /// between survives.
    fn find_promotion_victim(
        &self,
        kernel: &mut Kernel,
    ) -> Option<(SegmentId, PageNumber, FrameId)> {
        let tiers = *kernel.tiers();
        let mut referenced: Vec<(SegmentId, PageNumber)> = Vec::new();
        let segs: Vec<SegmentId> = kernel
            .segment_ids()
            .filter(|s| self.managed.contains_key(&s.as_u32()))
            .collect();
        for seg in segs {
            let Ok(segment) = kernel.segment(seg) else {
                continue;
            };
            for (p, e) in segment.resident() {
                if e.flags.contains(PageFlags::PINNED) || tiers.tier_of(e.frame) != MemTier::Dram {
                    continue;
                }
                if e.flags.contains(PageFlags::REFERENCED) {
                    referenced.push((seg, p));
                    continue;
                }
                return Some((seg, p, e.frame));
            }
        }
        for (seg, p) in referenced {
            let _ = kernel.modify_page_flags(seg, p, 1, PageFlags::empty(), PageFlags::REFERENCED);
        }
        None
    }

    /// Promotes one hot page onto a DRAM frame via tier exchange.
    ///
    /// Preference order matches the ISSUE contract: a spare free-pool
    /// DRAM frame first (the free slot inherits the hot page's old
    /// lower-tier frame), else an exchange with the coldest DRAM victim.
    /// Either way frame conservation is an exchange invariant — no
    /// allocation ever happens.
    ///
    /// The swap path needs one extra copy: `MigrateFrame`'s one-way copy
    /// moves the hot page's bytes up, leaving the victim's landing frame
    /// with stale bytes, so the victim's page is saved before the
    /// exchange and restored (one charged page copy) after it.
    fn promote_page(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        heat: u64,
    ) -> Result<bool, ManagerError> {
        let tiers = *env.kernel.tiers();
        let Some(entry) = env.kernel.segment(seg)?.entry(page) else {
            return Ok(false);
        };
        let hot_frame = entry.frame;
        let from = tiers.tier_of(hot_frame);
        if from == MemTier::Dram || entry.flags.contains(PageFlags::PINNED) {
            return Ok(false);
        }
        let free_seg = self.free_seg(env)?;
        let swapped = match self.promotion_target(env.kernel, free_seg) {
            Some((slot, dst)) => {
                // The exchange clobbers the slot's bytes (the hot page's
                // old frame moves in residually): laundry there drops
                // first, exactly as on the demotion path.
                self.drop_slot_laundry(env, slot);
                self.op_migrate_frame(env, seg, page, dst)?;
                false
            }
            None => {
                let Some((vseg, vpage, vframe)) = self.find_promotion_victim(env.kernel) else {
                    self.promo_stats.no_target += 1;
                    return Ok(false);
                };
                let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
                env.kernel.manager_read_page(vseg, vpage, &mut buf)?;
                if from == MemTier::CompressedRam {
                    // The victim lands in the zram tier: account the RLE
                    // work a real compressed-RAM device would do, same as
                    // the demotion ladder.
                    let stored = rle_compress(&buf).len() as u64;
                    self.zram_stats.compressed += 1;
                    self.zram_stats.raw_bytes += BASE_PAGE_SIZE;
                    self.zram_stats.stored_bytes += stored;
                }
                self.op_migrate_frame(env, seg, page, vframe)?;
                env.kernel.manager_write_page(vseg, vpage, &buf)?;
                env.kernel.charge(env.kernel.costs().page_copy_4k);
                true
            }
        };
        self.stats.promotions += 1;
        if swapped {
            self.promo_stats.swapped += 1;
        } else {
            self.promo_stats.to_free += 1;
        }
        // The promotion copy is billed like a 4 KB transfer on the
        // market ledger, so a manager cannot thrash pages up the ladder
        // for free — the same anti-dodge role as the re-read I/O charge.
        env.spcm.charge_manager_io(self.id, 1);
        self.trace(
            env.kernel,
            EventKind::PagePromoted {
                manager: self.id.0,
                segment: seg.as_u32() as u64,
                page: page.as_u64(),
                from_tier: from.code(),
                heat,
                swapped,
            },
        );
        Ok(true)
    }

    /// One tick's promotion pass: prune stale heat, rank the live
    /// candidates (heat descending, page ascending — a total order, so
    /// the pass is a pure function of the run), and promote the top
    /// `promotion_budget`.
    fn promote_hot(&mut self, env: &mut Env<'_>) -> Result<u64, ManagerError> {
        if !self.promotion_on() || env.kernel.tiers().is_dram_only() || self.heat.is_empty() {
            return Ok(0);
        }
        // A bankrupt manager is shedding DRAM, not acquiring it: the
        // rebalance ladder runs instead (tick order: demote, then skip
        // promotion until solvent again).
        if env
            .spcm
            .market()
            .and_then(|mk| mk.balance(self.id))
            .is_some_and(|b| b < 0.0)
        {
            return Ok(0);
        }
        let tiers = *env.kernel.tiers();
        let segs: BTreeMap<u32, SegmentId> = env
            .kernel
            .segment_ids()
            .filter(|s| self.managed.contains_key(&s.as_u32()))
            .map(|s| (s.as_u32(), s))
            .collect();
        let threshold = self.config.promotion_threshold.max(1);
        let mut stale: Vec<(u32, u64)> = Vec::new();
        let mut cands: Vec<(u64, (u32, u64))> = Vec::new();
        for (&key, &heat) in &self.heat {
            let Some(&seg) = segs.get(&key.0) else {
                stale.push(key); // segment closed or unmanaged
                continue;
            };
            let Some(entry) = env.kernel.segment(seg)?.entry(PageNumber(key.1)) else {
                stale.push(key); // no longer resident
                continue;
            };
            if tiers.tier_of(entry.frame) == MemTier::Dram {
                stale.push(key); // reached DRAM on its own
                continue;
            }
            if entry.flags.contains(PageFlags::PINNED) {
                continue; // quarantined in place; keep the heat
            }
            if heat >= threshold {
                cands.push((heat, key));
            }
        }
        for key in stale {
            self.heat.remove(&key);
        }
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cands.truncate(self.config.promotion_budget as usize);
        let mut promoted = 0;
        for (heat, key) in cands {
            let Some(&seg) = segs.get(&key.0) else {
                continue;
            };
            if self.promote_page(env, seg, PageNumber(key.1), heat)? {
                self.heat.remove(&key);
                promoted += 1;
            }
        }
        Ok(promoted)
    }

    /// Resolves `seg`'s writeback destination (file, or lazily created
    /// swap). `None` for unmanaged segments (e.g. the free segment).
    fn writeback_target(&mut self, env: &mut Env<'_>, seg: SegmentId) -> Option<(FileId, bool)> {
        let ms = self.managed.get_mut(&seg.as_u32())?;
        match &mut ms.backing {
            Backing::File(f) => Some((*f, false)),
            Backing::Anonymous { swap, .. } => {
                let f = match swap {
                    Some(f) => *f,
                    None => {
                        let f = env.store.create(&format!("swap-{}", seg.as_u32()), 0);
                        *swap = Some(f);
                        f
                    }
                };
                Some((f, true))
            }
        }
    }

    /// Moves one dirty page's bytes to its backing store (file or swap),
    /// retrying transient device failures with backoff, and registers the
    /// swap copy. Returns the store latency, `None` for an unmanaged
    /// segment. This is the data half shared by both writeback modes;
    /// time accounting is the caller's.
    fn writeback_data(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<Option<Micros>, ManagerError> {
        let Some((file, is_anon)) = self.writeback_target(env, seg) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
        env.kernel.manager_read_page(seg, page, &mut buf)?;
        let offset = page.as_u64() * BASE_PAGE_SIZE;
        let latency =
            self.store_io_with_retry(env, true, |store| store.write(file, offset, &buf))?;
        if is_anon {
            if let Some(ManagedSegment {
                backing: Backing::Anonymous { swapped, .. },
            }) = self.managed.get_mut(&seg.as_u32())
            {
                swapped.insert(page.as_u64());
            }
        }
        self.stats.writebacks += 1;
        Ok(Some(latency))
    }

    /// Writes one dirty page back synchronously: the page copy and store
    /// latency are charged inline and billed on the spot.
    fn writeback(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<(), ManagerError> {
        let Some(latency) = self.writeback_data(env, seg, page)? else {
            return Ok(());
        };
        let copy = env.kernel.costs().page_copy_4k;
        env.kernel.charge(copy);
        env.kernel.charge(latency);
        self.wb_stats.billed_us += (copy + latency).as_micros();
        self.wb_stats.completed += 1;
        env.spcm.charge_manager_io(self.id, 1);
        Ok(())
    }

    /// Writes one dirty page back asynchronously: the bytes land on the
    /// store now (identical data path, retries and all), but the page
    /// copy + store latency are submitted to the pipeline as disk service
    /// time and billed when the completion fires. Returns the in-flight
    /// ticket, `None` for an unmanaged segment.
    fn writeback_async(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<Option<TicketId>, ManagerError> {
        let Some(latency) = self.writeback_data(env, seg, page)? else {
            return Ok(None);
        };
        let service = env.kernel.costs().page_copy_4k + latency;
        let ticket = self.wb.submit(env.kernel.now(), service);
        if self.promotion_on() {
            self.wb_keys.insert(ticket, (seg, page));
        }
        self.trace(
            env.kernel,
            EventKind::WritebackIssued {
                manager: self.id.0,
                segment: seg.as_u32() as u64,
                page: page.as_u64(),
                ticket,
            },
        );
        Ok(Some(ticket))
    }

    /// Handles a missing-page fault.
    fn handle_missing(
        &mut self,
        env: &mut Env<'_>,
        fault: &FaultEvent,
    ) -> Result<(), ManagerError> {
        let seg = fault.segment;
        let page = fault.page;
        let free_seg = self.free_seg(env)?;

        // Laundry rescue: the frame is still intact in the free pool. A
        // forced SPCM seizure may have taken the frame out from under the
        // map, so verify the slot is still resident; a stale entry falls
        // through to a normal fill.
        let key = (seg.as_u32(), page.as_u64());
        if let Some(slot) = self.laundry_remove(&key) {
            if env.kernel.segment(free_seg)?.entry(slot).is_some() {
                self.op_migrate_pages(
                    env,
                    free_seg,
                    seg,
                    slot,
                    page,
                    1,
                    PageFlags::RW,
                    PageFlags::empty(),
                )?;
                self.policy.note_resident(seg, page);
                self.stats.laundry_rescues += 1;
                self.stats.migrate_calls += 1;
                // A rescue IS a fault-time re-reference: the page came
                // back before its frame was reused. Heat it if it landed
                // below DRAM.
                self.note_heat(env.kernel, seg, page);
                return Ok(());
            }
        }

        let fill = match self.managed.get(&seg.as_u32()) {
            Some(ms) => match &ms.backing {
                Backing::File(f) => {
                    let size = env.store.size(*f).map_err(epcm_core::KernelError::from)?;
                    if page.as_u64() * BASE_PAGE_SIZE < size {
                        Some((*f, false))
                    } else {
                        None // append beyond EOF: minimal fault
                    }
                }
                Backing::Anonymous { swap, swapped } => {
                    // A page is only registered in `swapped` once a swap
                    // file exists; with no file it is a first touch.
                    match (swap, swapped.contains(&page.as_u64())) {
                        (Some(f), true) => Some((*f, true)),
                        _ => None,
                    }
                }
            },
            None => return Err(ManagerError::NotManaged { segment: seg }),
        };

        match fill {
            Some((file, is_swap)) => {
                env.kernel.charge(env.kernel.costs().manager_alloc);
                let slot = self.take_free_slot(env)?;
                let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
                let offset = page.as_u64() * BASE_PAGE_SIZE;
                let size = env.store.size(file).map_err(epcm_core::KernelError::from)?;
                let n = (BASE_PAGE_SIZE).min(size.saturating_sub(offset)) as usize;
                if n > 0 {
                    let latency = self.store_io_with_retry(env, false, |store| {
                        store.read(file, offset, &mut buf[..n])
                    })?;
                    env.kernel.charge(latency);
                }
                env.kernel.manager_write_page(free_seg, slot, &buf)?;
                env.kernel.charge(env.kernel.costs().page_copy_4k);
                self.op_migrate_pages(
                    env,
                    free_seg,
                    seg,
                    slot,
                    page,
                    1,
                    PageFlags::RW,
                    PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
                )?;
                self.policy.note_resident(seg, page);
                self.stats.migrate_calls += 1;
                if is_swap {
                    self.stats.swap_ins += 1;
                    // The swap copy stays registered: it remains valid
                    // while the page is clean, so a later clean eviction
                    // can drop the frame without I/O and still refill.
                    // A dirty eviction overwrites it.
                } else {
                    self.stats.file_fills += 1;
                }
                // A refill is a re-reference of a previously evicted
                // page; if it landed on a non-DRAM pool frame it is a
                // promotion candidate.
                self.note_heat(env.kernel, seg, page);
                Ok(())
            }
            None => {
                // Minimal fault. For file appends, allocate a 16 KB batch.
                let is_file = matches!(
                    self.managed.get(&seg.as_u32()),
                    Some(ManagedSegment {
                        backing: Backing::File(_)
                    })
                );
                let batch = if is_file {
                    self.config.append_batch.max(1)
                } else {
                    1
                };
                env.kernel.charge(env.kernel.costs().manager_alloc);
                // Appends grow the file segment in whole allocation units
                // ("allocates pages in 16K units" for appends, §3.2).
                if is_file && page.as_u64() + batch > env.kernel.segment(seg)?.size_pages() {
                    env.kernel.resize_segment(seg, page.as_u64() + batch)?;
                }
                let size = env.kernel.segment(seg)?.size_pages();
                // How many consecutive destination pages are allocatable.
                let mut want = 0;
                for i in 0..batch {
                    let p = page.offset(i);
                    if p.as_u64() >= size || env.kernel.segment(seg)?.entry(p).is_some() {
                        break;
                    }
                    want += 1;
                }
                let want = want.max(1);
                self.ensure_free(env, want)?;
                // Prefer a consecutive run of free slots so the batch is a
                // single MigratePages invocation (the 16 KB append unit).
                let run = find_free_run(env.kernel, free_seg, want, &self.laundry_slot_counts)?;
                match run {
                    Some((start, len)) => {
                        self.op_migrate_pages(
                            env,
                            free_seg,
                            seg,
                            start,
                            page,
                            len,
                            PageFlags::RW,
                            PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
                        )?;
                        self.stats.migrate_calls += 1;
                        for i in 0..len {
                            self.policy.note_resident(seg, page.offset(i));
                        }
                        if len > 1 {
                            self.stats.append_batches += 1;
                            self.trace(
                                env.kernel,
                                EventKind::BatchSwap {
                                    manager: self.id.0,
                                    segment: seg.as_u32() as u64,
                                    pages: len,
                                },
                            );
                        }
                    }
                    None => {
                        let slot = self.take_free_slot(env)?;
                        self.op_migrate_pages(
                            env,
                            free_seg,
                            seg,
                            slot,
                            page,
                            1,
                            PageFlags::RW,
                            PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
                        )?;
                        self.stats.migrate_calls += 1;
                        self.policy.note_resident(seg, page);
                    }
                }
                self.stats.minimal_faults += 1;
                Ok(())
            }
        }
    }

    /// Handles a protection fault: reference-sampling restore (batched).
    fn handle_protection(
        &mut self,
        env: &mut Env<'_>,
        fault: &FaultEvent,
    ) -> Result<(), ManagerError> {
        let seg = fault.segment;
        let page = fault.page;
        // If the page itself already permits the access, the denial came
        // from a bound region's protection — nothing the manager should
        // lift; the application gets the error (a SIGSEGV analog).
        if let FaultKind::Protection { flags } = fault.kind {
            if flags.permits(fault.access) {
                return Err(ManagerError::ProtectionDenied { segment: seg, page });
            }
        }
        self.stats.sampling_faults += 1;
        // The faulting page was genuinely referenced.
        self.policy.note_referenced(seg, page);
        // Sampling-window hit: the same reference signal feeds the
        // promotion ladder when the page sits below DRAM.
        self.note_heat(env.kernel, seg, page);
        // Restore protection on a batch of contiguous resident pages to
        // amortise fault cost (§2.3). The resident prefix is scanned
        // before any flags change — the scan reads only presence, which
        // no ModifyPageFlags alters, so pre-scanning is equivalent to
        // the interleaved check-then-modify loop in both ABI modes.
        let size = env.kernel.segment(seg)?.size_pages();
        let batch = self.config.protection_batch.max(1);
        let mut run = 0;
        {
            let segment = env.kernel.segment(seg)?;
            for i in 0..batch {
                let p = page.offset(i);
                if p.as_u64() >= size || segment.entry(p).is_none() {
                    break;
                }
                run += 1;
            }
        }
        for i in 0..run {
            self.op_modify_flags_deferred(
                env,
                seg,
                page.offset(i),
                1,
                PageFlags::RW,
                PageFlags::MANAGER_B,
            )?;
        }
        // With the batched ABI this is the crossing collapse: one
        // doorbell drains the whole restore batch.
        self.ring_flush(env)
    }

    /// Handles a copy-on-write fault: provide a frame; the kernel copies.
    fn handle_cow(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError> {
        let free_seg = self.free_seg(env)?;
        env.kernel.charge(env.kernel.costs().manager_alloc);
        let slot = self.take_free_slot(env)?;
        self.op_migrate_pages(
            env,
            free_seg,
            fault.segment,
            slot,
            fault.page,
            1,
            PageFlags::RW,
            PageFlags::MANAGER_B,
        )?;
        self.policy.note_resident(fault.segment, fault.page);
        self.stats.cow_faults += 1;
        self.stats.migrate_calls += 1;
        Ok(())
    }

    /// Revokes protection on up to `sample_batch` resident pages to gather
    /// reference information for the clock (the sampling sweep).
    fn sampling_sweep(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        if self.config.sample_batch == 0 {
            return Ok(());
        }
        let mut remaining = self.config.sample_batch;
        let seg_ids: Vec<u32> = self.managed.keys().copied().collect();
        if seg_ids.is_empty() {
            return Ok(());
        }
        let start = self.sample_cursor;
        for &sid in seg_ids
            .iter()
            .cycle()
            .skip_while(|&&s| s < start.0)
            .take(seg_ids.len())
        {
            if remaining == 0 {
                break;
            }
            let seg = match env.kernel.segment_ids().find(|s| s.as_u32() == sid) {
                Some(s) => s,
                None => continue,
            };
            let pages: Vec<PageNumber> = env
                .kernel
                .segment(seg)?
                .resident()
                .filter(|(p, e)| {
                    e.flags.contains(PageFlags::READ)
                        && !e.flags.contains(PageFlags::PINNED)
                        && (sid, p.as_u64()) >= (start.0, if sid == start.0 { start.1 } else { 0 })
                })
                .map(|(p, _)| p)
                .take(remaining as usize)
                .collect();
            for p in pages {
                // Deferred onto the ring in batched mode: the page list
                // was snapshotted above, so revoking flags later in the
                // same sweep cannot change which pages are visited.
                self.op_modify_flags_deferred(
                    env,
                    seg,
                    p,
                    1,
                    PageFlags::MANAGER_B,
                    PageFlags::READ | PageFlags::WRITE,
                )?;
                remaining -= 1;
                self.sample_cursor = (sid, p.as_u64() + 1);
            }
        }
        if remaining > 0 {
            self.sample_cursor = (0, 0); // wrap the sweep
        }
        // One doorbell for the whole sweep's revocations.
        self.ring_flush(env)
    }
}

/// Longest run (up to `want`) of consecutive free-segment slots holding
/// frames, avoiding slots that are keeping laundry data alive. Returns
/// `(start, len)` with `len >= 1`, or `None` if only laundry slots remain.
fn find_free_run(
    kernel: &Kernel,
    free_seg: SegmentId,
    want: u64,
    in_laundry: &BTreeMap<u64, usize>,
) -> Result<Option<(PageNumber, u64)>, epcm_core::KernelError> {
    let s = kernel.segment(free_seg)?;
    let mut best: Option<(u64, u64)> = None; // (start, len)
    let mut run_start: Option<u64> = None;
    let mut prev: Option<u64> = None;
    for (p, _) in s.resident() {
        let p = p.as_u64();
        if in_laundry.contains_key(&p) {
            run_start = None;
            prev = None;
            continue;
        }
        match (run_start, prev) {
            (Some(start), Some(q)) if p == q + 1 => {
                let len = p - start + 1;
                if best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((start, len));
                }
                if len >= want {
                    return Ok(Some((PageNumber(start), want)));
                }
            }
            _ => {
                run_start = Some(p);
                if best.is_none() {
                    best = Some((p, 1));
                }
            }
        }
        prev = Some(p);
    }
    Ok(best.map(|(start, len)| (PageNumber(start), len.min(want))))
}

/// First page slot in `seg` holding no frame.
fn first_empty_slot(kernel: &Kernel, seg: SegmentId) -> Result<PageNumber, epcm_core::KernelError> {
    let s = kernel.segment(seg)?;
    let mut expected = 0u64;
    for (p, _) in s.resident() {
        if p.as_u64() != expected {
            return Ok(PageNumber(expected));
        }
        expected += 1;
    }
    Ok(PageNumber(expected))
}

impl SegmentManager for DefaultSegmentManager {
    fn id(&self) -> ManagerId {
        self.id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn set_id(&mut self, id: ManagerId) {
        self.id = id;
    }

    fn mode(&self) -> ManagerMode {
        self.mode
    }

    fn attach(&mut self, env: &mut Env<'_>, segment: SegmentId) -> Result<(), ManagerError> {
        let kind = env.kernel.segment(segment)?.kind();
        let backing = match kind {
            SegmentKind::CachedFile(f) => Backing::File(f),
            _ => Backing::Anonymous {
                swap: None,
                swapped: BTreeSet::new(),
            },
        };
        env.kernel.set_segment_manager(segment, self.id)?;
        self.managed
            .insert(segment.as_u32(), ManagedSegment { backing });
        // Seed policy with already-resident pages (ownership assumption of
        // an existing segment, §2.2).
        let resident: Vec<PageNumber> = env
            .kernel
            .segment(segment)?
            .resident()
            .map(|(p, _)| p)
            .collect();
        for p in resident {
            self.policy.note_resident(segment, p);
        }
        Ok(())
    }

    fn handle_fault(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError> {
        // Completions due by now free their window slots and unclean
        // marks before the fault is dispatched.
        self.drain_writebacks(env);
        self.stats.faults += 1;
        match fault.kind {
            FaultKind::Missing => self.handle_missing(env, fault),
            FaultKind::Protection { .. } => self.handle_protection(env, fault),
            FaultKind::CopyOnWrite { .. } => self.handle_cow(env, fault),
        }
    }

    fn reclaim(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        // Forced return to the SPCM: first make frames free, then hand the
        // free pool's frames back.
        let free_seg = self.free_seg(env)?;
        let have = self.free_count(env.kernel);
        if have < count {
            self.reclaim_into_pool(env, count - have)?;
        }
        let give: Vec<PageNumber> = env
            .kernel
            .segment(free_seg)?
            .resident()
            .map(|(p, _)| p)
            .take(count as usize)
            .collect();
        // Frames leaving our pool invalidate any laundry they hold; an
        // in-flight writeback must finish before its frame departs.
        let leaving: BTreeSet<u64> = give.iter().map(|p| p.as_u64()).collect();
        let invalidated: Vec<(u32, u64)> = self
            .laundry
            .iter()
            .filter(|(_, e)| leaving.contains(&e.slot.as_u64()))
            .map(|(key, _)| *key)
            .collect();
        for key in invalidated {
            self.stall_until_clean(env, key);
            self.laundry_remove(&key);
        }
        env.spcm
            .return_frames(env.kernel, self.id, free_seg, &give)?;
        self.trace(
            env.kernel,
            EventKind::Reclaim {
                manager: self.id.0,
                frames: give.len() as u64,
                forced: true,
            },
        );
        Ok(give.len() as u64)
    }

    fn segment_closed(
        &mut self,
        env: &mut Env<'_>,
        segment: SegmentId,
    ) -> Result<(), ManagerError> {
        let free_seg = self.free_seg(env)?;
        let pages: Vec<(PageNumber, PageFlags)> = env
            .kernel
            .segment(segment)?
            .resident()
            .map(|(p, e)| (p, e.flags))
            .collect();
        let is_file = matches!(
            self.managed.get(&segment.as_u32()),
            Some(ManagedSegment {
                backing: Backing::File(_)
            })
        );
        for (p, flags) in pages {
            // File data must survive the close; anonymous data dies with
            // the segment (no writeback).
            if is_file && flags.contains(PageFlags::DIRTY) {
                self.writeback(env, segment, p)?;
            }
            let slot = first_empty_slot(env.kernel, free_seg)?;
            self.op_migrate_pages(
                env,
                segment,
                free_seg,
                p,
                slot,
                1,
                PageFlags::RW,
                PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
            )?;
            self.policy.note_removed(segment, p);
            self.laundry_remove(&(segment.as_u32(), p.as_u64()));
        }
        self.managed.remove(&segment.as_u32());
        Ok(())
    }

    fn tick(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        self.drain_writebacks(env);
        if self.free_count(env.kernel) < self.config.low_water {
            // Opportunistic refill; ignore refusal (we reclaim on demand).
            let _ = self.ensure_free(env, self.config.target_free);
        }
        // In the red on a tiered machine: demote cold DRAM pages to
        // cheaper tiers rather than waiting for the SPCM to seize them.
        if !env.kernel.tiers().is_dram_only()
            && env
                .spcm
                .market()
                .and_then(|mk| mk.balance(self.id))
                .is_some_and(|b| b < 0.0)
        {
            let _ = self.rebalance_demote(env, self.config.demote_batch);
        }
        // The symmetric pass: top-K hot pages earn DRAM back each tick.
        self.promote_hot(env)?;
        self.sampling_sweep(env)
    }

    fn free_frames(&self, kernel: &Kernel) -> u64 {
        self.free_count(kernel)
    }

    fn set_tracer(&mut self, tracer: SharedTracer) {
        self.wb.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    fn export_metrics(&self, m: &mut MetricsRegistry) {
        let id = self.id.0;
        let s = &self.stats;
        m.set(&format!("manager.{id}.faults"), s.faults);
        m.set(&format!("manager.{id}.minimal_faults"), s.minimal_faults);
        m.set(&format!("manager.{id}.file_fills"), s.file_fills);
        m.set(&format!("manager.{id}.swap_ins"), s.swap_ins);
        m.set(&format!("manager.{id}.writebacks"), s.writebacks);
        m.set(&format!("manager.{id}.reclaimed"), s.reclaimed);
        m.set(&format!("manager.{id}.laundry_rescues"), s.laundry_rescues);
        m.set(&format!("manager.{id}.sampling_faults"), s.sampling_faults);
        m.set(&format!("manager.{id}.cow_faults"), s.cow_faults);
        m.set(&format!("manager.{id}.append_batches"), s.append_batches);
        m.set(&format!("manager.{id}.migrate_calls"), s.migrate_calls);
        m.set(&format!("manager.{id}.demotions"), s.demotions);
        m.set(
            &format!("manager.{id}.zram_compressed"),
            self.zram_stats.compressed,
        );
        m.set(
            &format!("manager.{id}.zram_stored_bytes"),
            self.zram_stats.stored_bytes,
        );
        let io = &self.io_stats;
        m.set(&format!("manager.{id}.io_attempts"), io.attempts);
        m.set(&format!("manager.{id}.io_retries"), io.retries);
        m.set(&format!("manager.{id}.io_gave_up"), io.gave_up);
        m.set(
            &format!("manager.{id}.quarantined_pages"),
            io.quarantined_pages,
        );
        let wb = &self.wb_stats;
        m.set(
            &format!("manager.{id}.writeback.inflight"),
            self.wb.in_flight() as u64,
        );
        m.set(
            &format!("manager.{id}.writeback.pending"),
            self.wb.queued() as u64,
        );
        m.set(&format!("manager.{id}.writeback.stall"), wb.stalls);
        m.set(&format!("manager.{id}.writeback.stall_us"), wb.stall_us);
        m.set(&format!("manager.{id}.writeback.completed"), wb.completed);
        m.set(&format!("manager.{id}.writeback.billed_us"), wb.billed_us);
        m.set(&format!("manager.{id}.laundry_dropped"), wb.laundry_dropped);
        // Ring keys are opt-in (same discipline as the kernel's ring
        // metrics): batched-off runs export an unchanged key set.
        if self.config.batched_abi {
            m.set(&format!("manager.{id}.ring.submitted"), self.ring_submitted);
        }
        // Promotion keys follow the same opt-in discipline: off-by-
        // default runs export byte-identical documents.
        if self.config.promotion_budget > 0 {
            let p = &self.promo_stats;
            m.set(&format!("manager.{id}.promotions.count"), s.promotions);
            m.set(
                &format!("manager.{id}.promotions.heat_events"),
                p.heat_events,
            );
            m.set(&format!("manager.{id}.promotions.to_free"), p.to_free);
            m.set(&format!("manager.{id}.promotions.swapped"), p.swapped);
            m.set(&format!("manager.{id}.promotions.no_target"), p.no_target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::AccessKind;

    fn machine_with(config: DefaultManagerConfig, frames: usize) -> (Machine, ManagerId) {
        let mut m = Machine::new(frames);
        let id = m.register_manager(Box::new(DefaultSegmentManager::with_config(
            ManagerMode::Server,
            config,
        )));
        m.set_default_manager(id);
        (m, id)
    }

    #[test]
    fn anonymous_first_touch_is_minimal_fault() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 1);
        // No file fill happened: store untouched.
        assert_eq!(m.store().read_count(), 0);
    }

    #[test]
    fn file_fault_fills_from_store() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        let content: Vec<u8> = (0..8192u32).map(|i| (i % 256) as u8).collect();
        m.store_mut().create_with("f", content.clone());
        let seg = m.open_file("f").unwrap();
        let mut buf = vec![0u8; 8192];
        m.load(seg, 0, &mut buf).unwrap();
        assert_eq!(buf, content);
        assert!(m.store().read_count() >= 2);
    }

    #[test]
    fn append_allocates_16k_batches() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        m.store_mut().create("out", 0);
        let seg = m.open_file("out").unwrap();
        m.kernel_mut().resize_segment(seg, 16).unwrap();
        // Touch the first page beyond EOF: the manager should allocate 4.
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 4);
        // Next three pages are already resident: no further manager calls.
        let calls = m.stats().manager_calls;
        for p in 1..4 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        assert_eq!(m.stats().manager_calls, calls);
    }

    #[test]
    fn eviction_writes_back_and_rescues() {
        let config = DefaultManagerConfig {
            target_free: 4,
            low_water: 1,
            refill_batch: 4,
            ..DefaultManagerConfig::default()
        };
        // Tiny machine: 24 frames total forces reclamation.
        let (mut m, id) = machine_with(config, 24);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        // Write distinct data to many pages, exceeding memory.
        for p in 0..40u64 {
            let data = [p as u8; 16];
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &data).unwrap();
        }
        // Earlier pages were evicted; re-reading them faults and refills
        // from swap (or rescues from laundry) with data intact.
        for p in 0..40u64 {
            let mut buf = [0u8; 16];
            m.load(seg, p * BASE_PAGE_SIZE, &mut buf).unwrap();
            assert_eq!(buf, [p as u8; 16], "page {p} lost its data");
        }
        let _ = id;
    }

    #[test]
    fn laundry_reinsert_tombstones_stale_order_entry() {
        // Regression: re-inserting over an existing key used to leave a
        // stale entry in the order queue that the free-slot path popped
        // and mis-treated as live, dropping the newer mapping out of
        // FIFO order.
        let mut mgr = DefaultSegmentManager::server();
        let a = (1u32, 0u64);
        let b = (2u32, 5u64);
        mgr.laundry_insert(a, PageNumber(10));
        mgr.laundry_insert(b, PageNumber(11));
        // `a` rescued, re-dirtied, reclaimed again into a new slot:
        mgr.laundry_insert(a, PageNumber(12));
        assert!(!mgr.laundry_slot_counts.contains_key(&10));
        assert!(mgr.laundry_slot_counts.contains_key(&11));
        assert!(mgr.laundry_slot_counts.contains_key(&12));
        // The stale front entry for `a` is a tombstone; the oldest live
        // mapping is `b`, then `a`'s re-insert.
        assert_eq!(mgr.oldest_live_laundry(), Some(b));
        mgr.laundry_order.pop_front();
        assert_eq!(mgr.laundry_remove(&b), Some(PageNumber(11)));
        assert_eq!(mgr.oldest_live_laundry(), Some(a));
        mgr.laundry_order.pop_front();
        assert_eq!(mgr.laundry_remove(&a), Some(PageNumber(12)));
        assert_eq!(mgr.oldest_live_laundry(), None);
        assert!(mgr.laundry_slot_counts.is_empty());
    }

    /// Overcommits a tiny machine until the free pool is wall-to-wall
    /// laundry, forcing the drop path; returns the machine + manager id.
    fn overcommitted(async_writeback: bool) -> (Machine, ManagerId, SegmentId) {
        let config = DefaultManagerConfig {
            target_free: 4,
            low_water: 1,
            refill_batch: 4,
            async_writeback,
            writeback_window: 1,
            writeback_servers: 1,
            ..DefaultManagerConfig::default()
        };
        let (mut m, id) = machine_with(config, 24);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        for p in 0..40u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[p as u8; 16])
                .unwrap();
        }
        (m, id, seg)
    }

    fn verify_and_flush(m: &mut Machine, id: ManagerId, seg: SegmentId) -> WritebackStats {
        for p in 0..40u64 {
            let mut buf = [0u8; 16];
            m.load(seg, p * BASE_PAGE_SIZE, &mut buf).unwrap();
            assert_eq!(buf, [p as u8; 16], "page {p} lost its data");
        }
        m.with_manager(id, |mgr, env| {
            let d = mgr
                .as_any_mut()
                .downcast_mut::<DefaultSegmentManager>()
                .unwrap();
            d.flush_writebacks(env);
            Ok(d.writeback_stats())
        })
        .unwrap()
    }

    #[test]
    fn laundry_drop_is_traced_and_loses_no_data() {
        let config = DefaultManagerConfig {
            target_free: 4,
            low_water: 1,
            refill_batch: 4,
            ..DefaultManagerConfig::default()
        };
        let (mut m, id) = machine_with(config, 24);
        let tracer = m.enable_event_tracing(1 << 16);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        for p in 0..40u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[p as u8; 16])
                .unwrap();
        }
        let stats = verify_and_flush(&mut m, id, seg);
        assert!(
            stats.laundry_dropped > 0,
            "workload never hit the drop path"
        );
        // Every drop is traced — never silent — and the data survived
        // the readback above, so no live page was lost.
        assert_eq!(
            tracer
                .kind_counts()
                .get("laundry_evicted")
                .copied()
                .unwrap_or(0),
            stats.laundry_dropped
        );
    }

    #[test]
    fn async_writeback_keeps_fault_path_clear_and_bills_equal_to_sync() {
        let (mut m_sync, id_s, seg_s) = overcommitted(false);
        let sync = verify_and_flush(&mut m_sync, id_s, seg_s);
        let (mut m_async, id_a, seg_a) = overcommitted(true);
        let async_ = verify_and_flush(&mut m_async, id_a, seg_a);
        assert!(sync.billed_us > 0, "no writebacks happened");
        // Identical store op streams → identical per-op latencies →
        // exact billing equality at window 1.
        assert_eq!(sync.billed_us, async_.billed_us);
        assert_eq!(sync.completed, async_.completed);
        // The fault path stopped paying for dirty-victim disk time.
        assert!(sync.dirty_victim_us > 0);
        assert_eq!(async_.dirty_victim_us, 0);
        // The pipeline fully drained.
        let in_flight = m_async
            .with_manager(id_a, |mgr, _| {
                Ok(mgr
                    .as_any()
                    .downcast_ref::<DefaultSegmentManager>()
                    .unwrap()
                    .writebacks_in_flight())
            })
            .unwrap();
        assert_eq!(in_flight, 0);
    }

    #[test]
    fn async_writeback_traces_issue_and_completion() {
        let (mut m, id, seg) = {
            let config = DefaultManagerConfig {
                target_free: 4,
                low_water: 1,
                refill_batch: 4,
                async_writeback: true,
                writeback_window: 2,
                writeback_servers: 1,
                ..DefaultManagerConfig::default()
            };
            let (mut m, id) = machine_with(config, 24);
            let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
            (m, id, seg)
        };
        let tracer = m.enable_event_tracing(1 << 16);
        for p in 0..40u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[p as u8; 16])
                .unwrap();
        }
        let stats = verify_and_flush(&mut m, id, seg);
        let counts = tracer.kind_counts();
        let issued = counts.get("writeback_issued").copied().unwrap_or(0);
        let completed = counts.get("writeback_completed").copied().unwrap_or(0);
        assert!(issued > 0, "async run issued no writebacks");
        assert_eq!(issued, completed, "pipeline left completions unbilled");
        assert_eq!(completed, stats.completed);
    }

    #[test]
    fn close_writes_file_pages_back() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        m.store_mut().create("out", 0);
        let seg = m.open_file("out").unwrap();
        m.uio_write(seg, 0, b"persist me").unwrap();
        m.close_segment(seg).unwrap();
        let f = m.store().find("out").unwrap();
        let mut buf = [0u8; 10];
        m.store_mut().read(f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
    }

    #[test]
    fn sampling_generates_protection_faults_and_restores_batches() {
        let config = DefaultManagerConfig {
            sample_batch: 8,
            protection_batch: 4,
            ..DefaultManagerConfig::default()
        };
        let (mut m, _) = machine_with(config, 256);
        let seg = m.create_segment(SegmentKind::Anonymous, 16).unwrap();
        for p in 0..8 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        m.tick().unwrap(); // revokes protection on the 8 resident pages
        let faults_before = m.kernel_stats().faults_protection;
        m.touch(seg, 0, AccessKind::Read).unwrap(); // sampling fault
        assert_eq!(m.kernel_stats().faults_protection, faults_before + 1);
        // The batch restored pages 0..4: touching them is fault-free.
        let calls = m.stats().manager_calls;
        for p in 1..4 {
            m.touch(seg, p, AccessKind::Read).unwrap();
        }
        assert_eq!(m.stats().manager_calls, calls);
        // Page 4 still revoked: next touch faults again.
        m.touch(seg, 4, AccessKind::Read).unwrap();
        assert_eq!(m.stats().manager_calls, calls + 1);
    }

    #[test]
    fn forced_reclaim_returns_frames_to_spcm() {
        let (mut m, id) = machine_with(DefaultManagerConfig::default(), 128);
        let seg = m.create_segment(SegmentKind::Anonymous, 32).unwrap();
        for p in 0..32 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        let granted_before = m.spcm().granted_to(id);
        assert!(granted_before >= 32);
        let returned = m.with_manager(id, |mgr, env| mgr.reclaim(env, 16)).unwrap();
        assert_eq!(returned, 16);
        assert_eq!(m.spcm().granted_to(id), granted_before - 16);
    }

    #[test]
    fn cow_fault_is_serviced() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        let source = m.create_segment(SegmentKind::Anonymous, 4).unwrap();
        m.store_bytes(source, 0, b"shared").unwrap();
        let child = m.create_segment(SegmentKind::Anonymous, 4).unwrap();
        m.kernel_mut()
            .bind_region(
                child,
                PageNumber(0),
                4,
                source,
                PageNumber(0),
                true,
                PageFlags::RW,
            )
            .unwrap();
        m.store_bytes(child, 0, b"BRANCH").unwrap();
        let mut buf = [0u8; 6];
        m.load(source, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        m.load(child, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"BRANCH");
        assert_eq!(m.kernel_stats().faults_cow, 1);
    }
}
