//! The default segment manager (§2.3) — the extended UCDS.
//!
//! Conventional programs never see external page-cache management: this
//! server-mode manager gives them a transparent demand-paged system built
//! entirely from the kernel's exported operations. It maintains a
//! free-page segment, fills file pages from the backing store, swaps
//! anonymous pages, batches allocation for file appends in 16 KB units
//! (the paper's noted difference from Ultrix), runs a clock replacement
//! policy driven by protection-fault reference sampling with batched
//! re-enabling, and keeps reclaimed-but-unreused frames rescuable (the
//! paper's migrate-it-back trick). On tiered machines the clock gains a
//! demotion stage: dirty second-chance victims on DRAM frames trade
//! places with spare lower-tier pool frames instead of paying writeback
//! I/O, and a bankrupt manager demotes cold pages at tick time to cut
//! its market bill rather than losing frames to forced seizure.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use epcm_core::fault::{FaultEvent, FaultKind};
use epcm_core::flags::PageFlags;
use epcm_core::kernel::Kernel;
use epcm_core::tier::MemTier;
use epcm_core::types::{FrameId, ManagerId, PageNumber, SegmentId, SegmentKind, BASE_PAGE_SIZE};
use epcm_sim::clock::Micros;
use epcm_sim::disk::{FileId, FileStore, FileStoreError};
use epcm_trace::{EventKind, MetricsRegistry, SharedTracer, TraceEvent, TraceSink};

use crate::compress::{rle_compress, CompressStats};
use crate::manager::{Env, ManagerError, ManagerMode, SegmentManager};
use crate::policy::{ClockPolicy, Probe, ReplacementPolicy};
use crate::spcm::PhysConstraint;

/// Where a managed segment's page data lives when not resident.
#[derive(Debug, Clone)]
enum Backing {
    /// A cached file: pages are the file's blocks.
    File(FileId),
    /// Anonymous memory, swapped on demand; the swap file is created
    /// lazily, `swapped` lists pages with valid swap copies.
    Anonymous {
        swap: Option<FileId>,
        swapped: BTreeSet<u64>,
    },
}

#[derive(Debug, Clone)]
struct ManagedSegment {
    backing: Backing,
}

/// Outcome of one demotion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Demotion {
    /// The page now sits on a lower-tier frame.
    Done,
    /// The page is eligible but no lower-tier frame is pooled yet.
    NoTarget,
    /// The page is gone, or not on a DRAM frame.
    Ineligible,
}

/// Counters exposed for Table 3 and the extended analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultManagerStats {
    /// Faults handled, all kinds.
    pub faults: u64,
    /// Minimal faults (frame handed over with no fill).
    pub minimal_faults: u64,
    /// Pages filled from a backing file.
    pub file_fills: u64,
    /// Pages filled from swap.
    pub swap_ins: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
    /// Pages reclaimed by the replacement policy.
    pub reclaimed: u64,
    /// Reclaimed pages rescued before reuse (migrated straight back).
    pub laundry_rescues: u64,
    /// Protection faults that were reference-sampling events.
    pub sampling_faults: u64,
    /// Copy-on-write faults serviced.
    pub cow_faults: u64,
    /// Append faults that allocated a 16 KB batch.
    pub append_batches: u64,
    /// `MigratePages` invocations made by this manager while handling
    /// faults (Table 3 column 2).
    pub migrate_calls: u64,
    /// Pages demoted to a cheaper memory tier instead of being written
    /// back and evicted (tier exchange via `MigrateFrame`).
    pub demotions: u64,
}

/// Counters for the retry-with-backoff backing-store I/O path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoRetryStats {
    /// Store operations attempted (first tries and retries).
    pub attempts: u64,
    /// Retries issued after a transient injected failure.
    pub retries: u64,
    /// Operations abandoned: a permanent failure, or transient failures
    /// outlasting the retry budget.
    pub gave_up: u64,
    /// Dirty pages pinned in place because their writeback target is dead.
    pub quarantined_pages: u64,
}

/// Tuning knobs for the default manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultManagerConfig {
    /// Free-pool size the manager tries to keep on hand.
    pub target_free: u64,
    /// Refill the pool when it drops below this.
    pub low_water: u64,
    /// Frames requested from the SPCM per refill.
    pub refill_batch: u64,
    /// Pages allocated per append fault (16 KB = 4 pages, §3.2).
    pub append_batch: u64,
    /// Contiguous pages re-enabled per sampling protection fault ("the
    /// default manager changes the protection on a number of contiguous
    /// pages, rather than a single page").
    pub protection_batch: u64,
    /// Resident pages protection-revoked per tick for reference sampling
    /// (0 disables sampling).
    pub sample_batch: u64,
    /// Retries per backing-store operation before giving up on a
    /// transiently failing device (0 = fail on first error).
    pub io_retry_limit: u32,
    /// Virtual-time delay before the first retry; doubles per attempt.
    pub io_retry_backoff: Micros,
    /// Upper bound on tier demotions per reclaim pass and per
    /// market-driven rebalance (0 disables demotion). Only meaningful on
    /// tiered machines; dram-only layouts never demote.
    pub demote_batch: u64,
}

impl Default for DefaultManagerConfig {
    fn default() -> Self {
        DefaultManagerConfig {
            target_free: 64,
            low_water: 8,
            refill_batch: 64,
            append_batch: 4,
            protection_batch: 16,
            sample_batch: 0,
            io_retry_limit: 4,
            io_retry_backoff: Micros::new(500),
            demote_batch: 8,
        }
    }
}

/// The default segment manager.
///
/// # Example
///
/// ```
/// use epcm_managers::{DefaultSegmentManager, Machine};
/// use epcm_core::{AccessKind, SegmentKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::with_default_manager(512);
/// let heap = machine.create_segment(SegmentKind::Anonymous, 16)?;
/// machine.touch(heap, 7, AccessKind::Write)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DefaultSegmentManager {
    id: ManagerId,
    mode: ManagerMode,
    config: DefaultManagerConfig,
    free_seg: Option<SegmentId>,
    managed: BTreeMap<u32, ManagedSegment>,
    policy: ClockPolicy,
    /// Reclaimed pages whose frames still sit (data intact) in the free
    /// segment: `(segment, page) -> free-segment slot`. FIFO reuse order.
    laundry: BTreeMap<(u32, u64), PageNumber>,
    laundry_order: VecDeque<(u32, u64)>,
    /// Incremental mirror of `laundry.values()` as slot -> entry count,
    /// so the free-slot picker and the append-run scanner check "is this
    /// slot keeping laundry alive?" in O(log n) instead of rebuilding a
    /// set from the whole map on every fault.
    laundry_slot_counts: BTreeMap<u64, usize>,
    /// Cursor for the sampling sweep.
    sample_cursor: (u32, u64),
    /// Dirty pages pinned in place after their writeback target died:
    /// `(segment, page)`. Their data is preserved but their frames are
    /// withdrawn from replacement.
    quarantined: BTreeSet<(u32, u64)>,
    stats: DefaultManagerStats,
    io_stats: IoRetryStats,
    /// Accounting for the CompressedRam tier backend (the `compress.rs`
    /// RLE scheme refitted as a tier): pages demoted into zram frames are
    /// compressed on the way in.
    zram_stats: CompressStats,
    tracer: Option<SharedTracer>,
}

impl DefaultSegmentManager {
    /// A default manager in the paper's deployed configuration: a separate
    /// server process.
    pub fn server() -> Self {
        DefaultSegmentManager::with_config(ManagerMode::Server, DefaultManagerConfig::default())
    }

    /// A manager executing in the faulting process — the cheap dispatch
    /// mode of Table 1 row 1, used by application-specific managers.
    pub fn in_process() -> Self {
        DefaultSegmentManager::with_config(
            ManagerMode::FaultingProcess,
            DefaultManagerConfig::default(),
        )
    }

    /// Full control over mode and tuning.
    pub fn with_config(mode: ManagerMode, config: DefaultManagerConfig) -> Self {
        DefaultSegmentManager {
            id: ManagerId(u32::MAX),
            mode,
            config,
            free_seg: None,
            managed: BTreeMap::new(),
            policy: ClockPolicy::new(),
            laundry: BTreeMap::new(),
            laundry_order: VecDeque::new(),
            laundry_slot_counts: BTreeMap::new(),
            sample_cursor: (0, 0),
            quarantined: BTreeSet::new(),
            stats: DefaultManagerStats::default(),
            io_stats: IoRetryStats::default(),
            zram_stats: CompressStats::default(),
            tracer: None,
        }
    }

    /// Records `kind` at the current virtual time, if tracing is on.
    fn trace(&self, kernel: &Kernel, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.record(TraceEvent::new(kernel.now().as_micros(), kind));
        }
    }

    /// Manager counters.
    pub fn manager_stats(&self) -> DefaultManagerStats {
        self.stats
    }

    /// Retry/backoff counters for backing-store I/O.
    pub fn io_retry_stats(&self) -> IoRetryStats {
        self.io_stats
    }

    /// Dirty pages currently pinned in quarantine.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Compression accounting for pages demoted into CompressedRam frames.
    pub fn zram_stats(&self) -> CompressStats {
        self.zram_stats
    }

    /// Runs one backing-store operation with bounded retry and exponential
    /// backoff on the virtual clock. Every injected fault and every retry
    /// is traced; a permanent failure (or a transient one outlasting the
    /// budget) is returned to the caller.
    fn store_io_with_retry(
        &mut self,
        env: &mut Env<'_>,
        write: bool,
        mut op: impl FnMut(&mut FileStore) -> Result<Micros, FileStoreError>,
    ) -> Result<Micros, ManagerError> {
        let limit = self.config.io_retry_limit;
        let mut attempt = 0u32;
        loop {
            self.io_stats.attempts += 1;
            let err = match op(env.store) {
                Ok(latency) => return Ok(latency),
                Err(e) => e,
            };
            let (file, op_idx, transient) = match &err {
                FileStoreError::Io {
                    file,
                    op,
                    transient,
                    ..
                } => (file.as_u32(), *op, *transient),
                _ => return Err(ManagerError::Store(err)),
            };
            self.trace(
                env.kernel,
                EventKind::FaultInjected {
                    file,
                    op: op_idx,
                    write,
                    transient,
                },
            );
            if transient && attempt < limit {
                attempt += 1;
                self.io_stats.retries += 1;
                self.trace(
                    env.kernel,
                    EventKind::IoRetry {
                        manager: self.id.0,
                        file,
                        attempt,
                        write,
                    },
                );
                env.kernel
                    .charge(self.config.io_retry_backoff * (1u64 << (attempt - 1).min(20)));
                continue;
            }
            self.io_stats.gave_up += 1;
            return Err(ManagerError::Store(err));
        }
    }

    /// Pins a dirty page whose backing store refuses its data: the frame
    /// is withdrawn from replacement but the data survives in memory.
    fn quarantine_in_place(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<(), ManagerError> {
        env.kernel
            .modify_page_flags(seg, page, 1, PageFlags::PINNED, PageFlags::empty())?;
        if self.quarantined.insert((seg.as_u32(), page.as_u64())) {
            self.io_stats.quarantined_pages += 1;
            self.trace(
                env.kernel,
                EventKind::ManagerQuarantined {
                    manager: self.id.0,
                    pages: self.quarantined.len() as u64,
                    destroyed: false,
                },
            );
        }
        Ok(())
    }

    /// The manager's free-page segment, once created.
    pub fn free_segment(&self) -> Option<SegmentId> {
        self.free_seg
    }

    fn free_seg(&mut self, env: &mut Env<'_>) -> Result<SegmentId, ManagerError> {
        if let Some(seg) = self.free_seg {
            return Ok(seg);
        }
        // Size the free segment to the whole machine: slots are cheap and
        // this lets the pool grow to whatever the SPCM will grant.
        let frames = env.kernel.frames().len() as u64;
        let seg = env.kernel.create_segment(
            SegmentKind::FramePool,
            epcm_core::UserId::SYSTEM,
            self.id,
            1,
            frames,
        )?;
        self.free_seg = Some(seg);
        Ok(seg)
    }

    fn free_count(&self, kernel: &Kernel) -> u64 {
        self.free_seg
            .and_then(|s| kernel.resident_pages(s).ok())
            .unwrap_or(0)
    }

    /// Ensures at least `want` frames sit in the free pool, requesting
    /// from the SPCM and then reclaiming managed pages if refused.
    fn ensure_free(&mut self, env: &mut Env<'_>, want: u64) -> Result<(), ManagerError> {
        let free_seg = self.free_seg(env)?;
        let have = self.free_count(env.kernel);
        if have >= want {
            return Ok(());
        }
        let ask = (want - have).max(self.config.refill_batch);
        let grant =
            env.spcm
                .request_frames(env.kernel, self.id, free_seg, ask, PhysConstraint::Any)?;
        if self.free_count(env.kernel) >= want {
            return Ok(());
        }
        let _ = grant;
        // SPCM would not (fully) provide: reclaim our own pages.
        let deficit = want - self.free_count(env.kernel);
        self.reclaim_into_pool(env, deficit)?;
        if self.free_count(env.kernel) >= want {
            Ok(())
        } else {
            Err(ManagerError::OutOfFrames { manager: self.id })
        }
    }

    /// Records `key`'s data surviving in free-segment `slot`.
    fn laundry_insert(&mut self, key: (u32, u64), slot: PageNumber) {
        if let Some(old) = self.laundry.insert(key, slot) {
            self.laundry_slot_released(old);
        }
        self.laundry_order.push_back(key);
        *self.laundry_slot_counts.entry(slot.as_u64()).or_insert(0) += 1;
    }

    /// Removes a laundry entry, keeping the slot-count mirror in sync.
    fn laundry_remove(&mut self, key: &(u32, u64)) -> Option<PageNumber> {
        let slot = self.laundry.remove(key)?;
        self.laundry_slot_released(slot);
        Some(slot)
    }

    fn laundry_slot_released(&mut self, slot: PageNumber) {
        if let Some(n) = self.laundry_slot_counts.get_mut(&slot.as_u64()) {
            *n -= 1;
            if *n == 0 {
                self.laundry_slot_counts.remove(&slot.as_u64());
            }
        }
    }

    /// Takes one free slot, evicting the oldest laundry entry if every
    /// free frame is acting as a laundry page.
    fn take_free_slot(&mut self, env: &mut Env<'_>) -> Result<PageNumber, ManagerError> {
        let free_seg = self.free_seg(env)?;
        self.ensure_free(env, 1)?;
        let pick = env
            .kernel
            .segment(free_seg)?
            .resident()
            .map(|(p, _)| p)
            .find(|p| !self.laundry_slot_counts.contains_key(&p.as_u64()));
        if let Some(p) = pick {
            return Ok(p);
        }
        // All free frames hold laundry: drop the oldest mapping (its data
        // was already written back at reclaim time).
        while let Some(key) = self.laundry_order.pop_front() {
            if let Some(slot) = self.laundry_remove(&key) {
                return Ok(slot);
            }
        }
        Err(ManagerError::OutOfFrames { manager: self.id })
    }

    /// Reclaims `count` pages from managed segments into the free pool,
    /// writing dirty data back first. Reclaimed pages stay rescuable until
    /// their frame is reused. Dirty victims whose store is dead are
    /// quarantined in place and another victim is tried, so a failing
    /// device degrades capacity instead of wedging replacement.
    fn reclaim_into_pool(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        let free_seg = self.free_seg(env)?;
        let mut reclaimed = 0;
        let mut demoted = 0;
        let mut deferred: VecDeque<(SegmentId, PageNumber)> = VecDeque::new();
        let mut attempts = 0;
        while reclaimed < count && attempts < count * 2 + 8 + demoted {
            attempts += 1;
            let victim = {
                let kernel = &mut *env.kernel;
                self.policy.select_victim(&mut |s, p| {
                    match kernel.get_page_attributes(s, p, 1) {
                        Ok(attrs) if attrs[0].present => {
                            let flags = attrs[0].flags;
                            if flags.contains(PageFlags::PINNED) {
                                Probe::Pinned
                            } else if flags.contains(PageFlags::REFERENCED) {
                                // Second chance: clear the bit.
                                let _ = kernel.modify_page_flags(
                                    s,
                                    p,
                                    1,
                                    PageFlags::empty(),
                                    PageFlags::REFERENCED,
                                );
                                Probe::Referenced
                            } else {
                                Probe::NotReferenced
                            }
                        }
                        _ => Probe::Gone,
                    }
                })
            };
            let Some((seg, page)) = victim else { break };
            // Demotion stage of the clock: a dirty second-chance victim
            // sitting on a DRAM frame trades frames with a spare
            // lower-tier pool slot instead of paying writeback I/O. Its
            // data stays resident one rung down the ladder; the DRAM
            // frame surfaces in the free pool for the next allocation.
            // The clock tends to sweep DRAM-framed pages before it pools
            // any lower-tier frame, so an eligible victim with no partner
            // yet is deferred — it demotes as soon as a later eviction
            // pools one — rather than evicted.
            if demoted + (deferred.len() as u64) < self.config.demote_batch {
                let dirty = env
                    .kernel
                    .get_page_attributes(seg, page, 1)
                    .ok()
                    .is_some_and(|a| a[0].present && a[0].flags.contains(PageFlags::DIRTY));
                if dirty {
                    match self.try_demote(env, free_seg, seg, page)? {
                        Demotion::Done => {
                            demoted += 1;
                            continue;
                        }
                        Demotion::NoTarget => {
                            deferred.push_back((seg, page));
                            continue;
                        }
                        Demotion::Ineligible => {}
                    }
                }
            }
            if self.evict(env, free_seg, seg, page)? {
                reclaimed += 1;
                // That eviction may have pooled a lower-tier frame:
                // drain the deferred demotions while partners last.
                while let Some(&(dseg, dpage)) = deferred.front() {
                    match self.try_demote(env, free_seg, dseg, dpage)? {
                        Demotion::Done => {
                            deferred.pop_front();
                            demoted += 1;
                        }
                        Demotion::Ineligible => {
                            deferred.pop_front();
                        }
                        Demotion::NoTarget => break,
                    }
                }
            }
        }
        if reclaimed > 0 {
            self.trace(
                env.kernel,
                EventKind::Reclaim {
                    manager: self.id.0,
                    frames: reclaimed,
                    forced: false,
                },
            );
        }
        Ok(reclaimed)
    }

    /// Writes back (if dirty) and migrates one page into the free pool.
    /// Returns whether a frame was actually freed: a dirty page whose
    /// store is permanently failing is quarantined in place instead
    /// (`false`), leaving the caller to pick another victim.
    fn evict(
        &mut self,
        env: &mut Env<'_>,
        free_seg: SegmentId,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<bool, ManagerError> {
        let entry = env
            .kernel
            .segment(seg)?
            .entry(page)
            .ok_or(epcm_core::KernelError::PageNotPresent { segment: seg, page })?;
        if entry.flags.contains(PageFlags::DIRTY) {
            match self.writeback(env, seg, page) {
                Ok(()) => {}
                Err(ManagerError::Store(FileStoreError::Io { .. })) => {
                    self.quarantine_in_place(env, seg, page)?;
                    return Ok(false);
                }
                Err(other) => return Err(other),
            }
        }
        // Destination: first empty slot in the free segment.
        let slot = first_empty_slot(env.kernel, free_seg)?;
        env.kernel.migrate_pages(
            seg,
            free_seg,
            page,
            slot,
            1,
            PageFlags::RW,
            PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
        )?;
        let key = (seg.as_u32(), page.as_u64());
        self.laundry_insert(key, slot);
        self.stats.reclaimed += 1;
        Ok(true)
    }

    /// Picks a free-pool slot whose frame sits below DRAM as the tier
    /// exchange partner, preferring SlowMem over CompressedRam (demotion
    /// walks the ladder one rung at a time) and laundry-free slots over
    /// laundered ones (the exchange clobbers the slot's bytes, so a
    /// laundered slot costs its rescue entries). Returns the slot, its
    /// frame, and the frame's tier.
    fn demotion_target(
        &self,
        kernel: &Kernel,
        free_seg: SegmentId,
    ) -> Option<(PageNumber, FrameId, MemTier)> {
        let tiers = *kernel.tiers();
        let seg = kernel.segment(free_seg).ok()?;
        let mut best: Option<(u32, PageNumber, FrameId, MemTier)> = None;
        for (p, e) in seg.resident() {
            let tier = tiers.tier_of(e.frame);
            if tier == MemTier::Dram {
                continue;
            }
            let laundered = self.laundry_slot_counts.contains_key(&p.as_u64());
            let score = u32::from(laundered) * 2 + u32::from(tier != MemTier::SlowMem);
            if score == 0 {
                return Some((p, e.frame, tier));
            }
            if best.is_none_or(|(s, ..)| score < s) {
                best = Some((score, p, e.frame, tier));
            }
        }
        best.map(|(_, p, f, t)| (p, f, t))
    }

    /// Attempts to demote `page` — resident on a DRAM frame — into a
    /// spare lower-tier free-pool frame via a kernel tier exchange. The
    /// page stays resident (only its physical frame changes), so no
    /// writeback I/O happens and the manager's DRAM bill shrinks.
    fn try_demote(
        &mut self,
        env: &mut Env<'_>,
        free_seg: SegmentId,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<Demotion, ManagerError> {
        let tiers = *env.kernel.tiers();
        if tiers.is_dram_only() {
            return Ok(Demotion::Ineligible);
        }
        let Some(entry) = env.kernel.segment(seg)?.entry(page) else {
            return Ok(Demotion::Ineligible);
        };
        if tiers.tier_of(entry.frame) != MemTier::Dram {
            return Ok(Demotion::Ineligible);
        }
        let Some((slot, dst, dst_tier)) = self.demotion_target(env.kernel, free_seg) else {
            return Ok(Demotion::NoTarget);
        };
        // The exchange overwrites the slot's bytes: any laundry it holds
        // must be dropped first (the same invariant take_free_slot uses —
        // laundered data was already written back at reclaim time).
        let stale: Vec<(u32, u64)> = self
            .laundry
            .iter()
            .filter(|(_, s)| s.as_u64() == slot.as_u64())
            .map(|(key, _)| *key)
            .collect();
        for key in stale {
            self.laundry_remove(&key);
        }
        if dst_tier == MemTier::CompressedRam {
            // The refitted compress.rs scheme backs this tier: account
            // the RLE work a real zram device would do on the way in.
            let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
            env.kernel.manager_read_page(seg, page, &mut buf)?;
            let stored = rle_compress(&buf).len() as u64;
            self.zram_stats.compressed += 1;
            self.zram_stats.raw_bytes += BASE_PAGE_SIZE;
            self.zram_stats.stored_bytes += stored;
        }
        env.kernel.migrate_frame(seg, page, dst)?;
        self.stats.demotions += 1;
        Ok(Demotion::Done)
    }

    /// Demotes up to `budget` cold (unreferenced, unpinned) DRAM pages
    /// into spare lower-tier pool frames. This is the bankrupt manager's
    /// survival path: holdings shift to cheaper tiers, the tiered bill
    /// shrinks, and no data is lost to a forced seizure.
    fn rebalance_demote(&mut self, env: &mut Env<'_>, budget: u64) -> Result<u64, ManagerError> {
        if budget == 0 || env.kernel.tiers().is_dram_only() {
            return Ok(0);
        }
        let free_seg = self.free_seg(env)?;
        let tiers = *env.kernel.tiers();
        let segs: Vec<SegmentId> = env
            .kernel
            .segment_ids()
            .filter(|s| self.managed.contains_key(&s.as_u32()))
            .collect();
        let mut demoted = 0;
        'segments: for seg in segs {
            let candidates: Vec<PageNumber> = match env.kernel.segment(seg) {
                Ok(segment) => segment
                    .resident()
                    .filter(|(_, e)| {
                        !e.flags.contains(PageFlags::PINNED)
                            && !e.flags.contains(PageFlags::REFERENCED)
                            && tiers.tier_of(e.frame) == MemTier::Dram
                    })
                    .map(|(p, _)| p)
                    .collect(),
                Err(_) => continue,
            };
            for page in candidates {
                if demoted >= budget {
                    break 'segments;
                }
                if self.try_demote(env, free_seg, seg, page)? == Demotion::Done {
                    demoted += 1;
                }
            }
        }
        Ok(demoted)
    }

    /// Writes one dirty page to its backing store (file or swap), retrying
    /// transient device failures with backoff.
    fn writeback(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
    ) -> Result<(), ManagerError> {
        let Some(ms) = self.managed.get_mut(&seg.as_u32()) else {
            return Ok(()); // unmanaged (e.g. free segment itself): nothing to do
        };
        let (file, is_anon) = match &mut ms.backing {
            Backing::File(f) => (*f, false),
            Backing::Anonymous { swap, .. } => {
                let f = match swap {
                    Some(f) => *f,
                    None => {
                        let f = env.store.create(&format!("swap-{}", seg.as_u32()), 0);
                        *swap = Some(f);
                        f
                    }
                };
                (f, true)
            }
        };
        let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
        env.kernel.manager_read_page(seg, page, &mut buf)?;
        env.kernel.charge(env.kernel.costs().page_copy_4k);
        let offset = page.as_u64() * BASE_PAGE_SIZE;
        let latency =
            self.store_io_with_retry(env, true, |store| store.write(file, offset, &buf))?;
        env.kernel.charge(latency);
        if is_anon {
            if let Some(ManagedSegment {
                backing: Backing::Anonymous { swapped, .. },
            }) = self.managed.get_mut(&seg.as_u32())
            {
                swapped.insert(page.as_u64());
            }
        }
        self.stats.writebacks += 1;
        Ok(())
    }

    /// Handles a missing-page fault.
    fn handle_missing(
        &mut self,
        env: &mut Env<'_>,
        fault: &FaultEvent,
    ) -> Result<(), ManagerError> {
        let seg = fault.segment;
        let page = fault.page;
        let free_seg = self.free_seg(env)?;

        // Laundry rescue: the frame is still intact in the free pool. A
        // forced SPCM seizure may have taken the frame out from under the
        // map, so verify the slot is still resident; a stale entry falls
        // through to a normal fill.
        let key = (seg.as_u32(), page.as_u64());
        if let Some(slot) = self.laundry_remove(&key) {
            if env.kernel.segment(free_seg)?.entry(slot).is_some() {
                env.kernel.migrate_pages(
                    free_seg,
                    seg,
                    slot,
                    page,
                    1,
                    PageFlags::RW,
                    PageFlags::empty(),
                )?;
                self.policy.note_resident(seg, page);
                self.stats.laundry_rescues += 1;
                self.stats.migrate_calls += 1;
                return Ok(());
            }
        }

        let fill = match self.managed.get(&seg.as_u32()) {
            Some(ms) => match &ms.backing {
                Backing::File(f) => {
                    let size = env.store.size(*f).map_err(epcm_core::KernelError::from)?;
                    if page.as_u64() * BASE_PAGE_SIZE < size {
                        Some((*f, false))
                    } else {
                        None // append beyond EOF: minimal fault
                    }
                }
                Backing::Anonymous { swap, swapped } => {
                    // A page is only registered in `swapped` once a swap
                    // file exists; with no file it is a first touch.
                    match (swap, swapped.contains(&page.as_u64())) {
                        (Some(f), true) => Some((*f, true)),
                        _ => None,
                    }
                }
            },
            None => return Err(ManagerError::NotManaged { segment: seg }),
        };

        match fill {
            Some((file, is_swap)) => {
                env.kernel.charge(env.kernel.costs().manager_alloc);
                let slot = self.take_free_slot(env)?;
                let mut buf = vec![0u8; BASE_PAGE_SIZE as usize];
                let offset = page.as_u64() * BASE_PAGE_SIZE;
                let size = env.store.size(file).map_err(epcm_core::KernelError::from)?;
                let n = (BASE_PAGE_SIZE).min(size.saturating_sub(offset)) as usize;
                if n > 0 {
                    let latency = self.store_io_with_retry(env, false, |store| {
                        store.read(file, offset, &mut buf[..n])
                    })?;
                    env.kernel.charge(latency);
                }
                env.kernel.manager_write_page(free_seg, slot, &buf)?;
                env.kernel.charge(env.kernel.costs().page_copy_4k);
                env.kernel.migrate_pages(
                    free_seg,
                    seg,
                    slot,
                    page,
                    1,
                    PageFlags::RW,
                    PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
                )?;
                self.policy.note_resident(seg, page);
                self.stats.migrate_calls += 1;
                if is_swap {
                    self.stats.swap_ins += 1;
                    // The swap copy stays registered: it remains valid
                    // while the page is clean, so a later clean eviction
                    // can drop the frame without I/O and still refill.
                    // A dirty eviction overwrites it.
                } else {
                    self.stats.file_fills += 1;
                }
                Ok(())
            }
            None => {
                // Minimal fault. For file appends, allocate a 16 KB batch.
                let is_file = matches!(
                    self.managed.get(&seg.as_u32()),
                    Some(ManagedSegment {
                        backing: Backing::File(_)
                    })
                );
                let batch = if is_file {
                    self.config.append_batch.max(1)
                } else {
                    1
                };
                env.kernel.charge(env.kernel.costs().manager_alloc);
                // Appends grow the file segment in whole allocation units
                // ("allocates pages in 16K units" for appends, §3.2).
                if is_file && page.as_u64() + batch > env.kernel.segment(seg)?.size_pages() {
                    env.kernel.resize_segment(seg, page.as_u64() + batch)?;
                }
                let size = env.kernel.segment(seg)?.size_pages();
                // How many consecutive destination pages are allocatable.
                let mut want = 0;
                for i in 0..batch {
                    let p = page.offset(i);
                    if p.as_u64() >= size || env.kernel.segment(seg)?.entry(p).is_some() {
                        break;
                    }
                    want += 1;
                }
                let want = want.max(1);
                self.ensure_free(env, want)?;
                // Prefer a consecutive run of free slots so the batch is a
                // single MigratePages invocation (the 16 KB append unit).
                let run = find_free_run(env.kernel, free_seg, want, &self.laundry_slot_counts)?;
                match run {
                    Some((start, len)) => {
                        env.kernel.migrate_pages(
                            free_seg,
                            seg,
                            start,
                            page,
                            len,
                            PageFlags::RW,
                            PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
                        )?;
                        self.stats.migrate_calls += 1;
                        for i in 0..len {
                            self.policy.note_resident(seg, page.offset(i));
                        }
                        if len > 1 {
                            self.stats.append_batches += 1;
                            self.trace(
                                env.kernel,
                                EventKind::BatchSwap {
                                    manager: self.id.0,
                                    segment: seg.as_u32() as u64,
                                    pages: len,
                                },
                            );
                        }
                    }
                    None => {
                        let slot = self.take_free_slot(env)?;
                        env.kernel.migrate_pages(
                            free_seg,
                            seg,
                            slot,
                            page,
                            1,
                            PageFlags::RW,
                            PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
                        )?;
                        self.stats.migrate_calls += 1;
                        self.policy.note_resident(seg, page);
                    }
                }
                self.stats.minimal_faults += 1;
                Ok(())
            }
        }
    }

    /// Handles a protection fault: reference-sampling restore (batched).
    fn handle_protection(
        &mut self,
        env: &mut Env<'_>,
        fault: &FaultEvent,
    ) -> Result<(), ManagerError> {
        let seg = fault.segment;
        let page = fault.page;
        // If the page itself already permits the access, the denial came
        // from a bound region's protection — nothing the manager should
        // lift; the application gets the error (a SIGSEGV analog).
        if let FaultKind::Protection { flags } = fault.kind {
            if flags.permits(fault.access) {
                return Err(ManagerError::ProtectionDenied { segment: seg, page });
            }
        }
        self.stats.sampling_faults += 1;
        // The faulting page was genuinely referenced.
        self.policy.note_referenced(seg, page);
        // Restore protection on a batch of contiguous resident pages to
        // amortise fault cost (§2.3).
        let size = env.kernel.segment(seg)?.size_pages();
        let batch = self.config.protection_batch.max(1);
        for i in 0..batch {
            let p = page.offset(i);
            if p.as_u64() >= size {
                break;
            }
            if env.kernel.segment(seg)?.entry(p).is_none() {
                break;
            }
            env.kernel
                .modify_page_flags(seg, p, 1, PageFlags::RW, PageFlags::MANAGER_B)?;
        }
        Ok(())
    }

    /// Handles a copy-on-write fault: provide a frame; the kernel copies.
    fn handle_cow(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError> {
        let free_seg = self.free_seg(env)?;
        env.kernel.charge(env.kernel.costs().manager_alloc);
        let slot = self.take_free_slot(env)?;
        env.kernel.migrate_pages(
            free_seg,
            fault.segment,
            slot,
            fault.page,
            1,
            PageFlags::RW,
            PageFlags::MANAGER_B,
        )?;
        self.policy.note_resident(fault.segment, fault.page);
        self.stats.cow_faults += 1;
        self.stats.migrate_calls += 1;
        Ok(())
    }

    /// Revokes protection on up to `sample_batch` resident pages to gather
    /// reference information for the clock (the sampling sweep).
    fn sampling_sweep(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        if self.config.sample_batch == 0 {
            return Ok(());
        }
        let mut remaining = self.config.sample_batch;
        let seg_ids: Vec<u32> = self.managed.keys().copied().collect();
        if seg_ids.is_empty() {
            return Ok(());
        }
        let start = self.sample_cursor;
        for &sid in seg_ids
            .iter()
            .cycle()
            .skip_while(|&&s| s < start.0)
            .take(seg_ids.len())
        {
            if remaining == 0 {
                break;
            }
            let seg = match env.kernel.segment_ids().find(|s| s.as_u32() == sid) {
                Some(s) => s,
                None => continue,
            };
            let pages: Vec<PageNumber> = env
                .kernel
                .segment(seg)?
                .resident()
                .filter(|(p, e)| {
                    e.flags.contains(PageFlags::READ)
                        && !e.flags.contains(PageFlags::PINNED)
                        && (sid, p.as_u64()) >= (start.0, if sid == start.0 { start.1 } else { 0 })
                })
                .map(|(p, _)| p)
                .take(remaining as usize)
                .collect();
            for p in pages {
                env.kernel.modify_page_flags(
                    seg,
                    p,
                    1,
                    PageFlags::MANAGER_B,
                    PageFlags::READ | PageFlags::WRITE,
                )?;
                remaining -= 1;
                self.sample_cursor = (sid, p.as_u64() + 1);
            }
        }
        if remaining > 0 {
            self.sample_cursor = (0, 0); // wrap the sweep
        }
        Ok(())
    }
}

/// Longest run (up to `want`) of consecutive free-segment slots holding
/// frames, avoiding slots that are keeping laundry data alive. Returns
/// `(start, len)` with `len >= 1`, or `None` if only laundry slots remain.
fn find_free_run(
    kernel: &Kernel,
    free_seg: SegmentId,
    want: u64,
    in_laundry: &BTreeMap<u64, usize>,
) -> Result<Option<(PageNumber, u64)>, epcm_core::KernelError> {
    let s = kernel.segment(free_seg)?;
    let mut best: Option<(u64, u64)> = None; // (start, len)
    let mut run_start: Option<u64> = None;
    let mut prev: Option<u64> = None;
    for (p, _) in s.resident() {
        let p = p.as_u64();
        if in_laundry.contains_key(&p) {
            run_start = None;
            prev = None;
            continue;
        }
        match (run_start, prev) {
            (Some(start), Some(q)) if p == q + 1 => {
                let len = p - start + 1;
                if best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((start, len));
                }
                if len >= want {
                    return Ok(Some((PageNumber(start), want)));
                }
            }
            _ => {
                run_start = Some(p);
                if best.is_none() {
                    best = Some((p, 1));
                }
            }
        }
        prev = Some(p);
    }
    Ok(best.map(|(start, len)| (PageNumber(start), len.min(want))))
}

/// First page slot in `seg` holding no frame.
fn first_empty_slot(kernel: &Kernel, seg: SegmentId) -> Result<PageNumber, epcm_core::KernelError> {
    let s = kernel.segment(seg)?;
    let mut expected = 0u64;
    for (p, _) in s.resident() {
        if p.as_u64() != expected {
            return Ok(PageNumber(expected));
        }
        expected += 1;
    }
    Ok(PageNumber(expected))
}

impl SegmentManager for DefaultSegmentManager {
    fn id(&self) -> ManagerId {
        self.id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn set_id(&mut self, id: ManagerId) {
        self.id = id;
    }

    fn mode(&self) -> ManagerMode {
        self.mode
    }

    fn attach(&mut self, env: &mut Env<'_>, segment: SegmentId) -> Result<(), ManagerError> {
        let kind = env.kernel.segment(segment)?.kind();
        let backing = match kind {
            SegmentKind::CachedFile(f) => Backing::File(f),
            _ => Backing::Anonymous {
                swap: None,
                swapped: BTreeSet::new(),
            },
        };
        env.kernel.set_segment_manager(segment, self.id)?;
        self.managed
            .insert(segment.as_u32(), ManagedSegment { backing });
        // Seed policy with already-resident pages (ownership assumption of
        // an existing segment, §2.2).
        let resident: Vec<PageNumber> = env
            .kernel
            .segment(segment)?
            .resident()
            .map(|(p, _)| p)
            .collect();
        for p in resident {
            self.policy.note_resident(segment, p);
        }
        Ok(())
    }

    fn handle_fault(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError> {
        self.stats.faults += 1;
        match fault.kind {
            FaultKind::Missing => self.handle_missing(env, fault),
            FaultKind::Protection { .. } => self.handle_protection(env, fault),
            FaultKind::CopyOnWrite { .. } => self.handle_cow(env, fault),
        }
    }

    fn reclaim(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        // Forced return to the SPCM: first make frames free, then hand the
        // free pool's frames back.
        let free_seg = self.free_seg(env)?;
        let have = self.free_count(env.kernel);
        if have < count {
            self.reclaim_into_pool(env, count - have)?;
        }
        let give: Vec<PageNumber> = env
            .kernel
            .segment(free_seg)?
            .resident()
            .map(|(p, _)| p)
            .take(count as usize)
            .collect();
        // Frames leaving our pool invalidate any laundry they hold.
        let leaving: BTreeSet<u64> = give.iter().map(|p| p.as_u64()).collect();
        let invalidated: Vec<(u32, u64)> = self
            .laundry
            .iter()
            .filter(|(_, slot)| leaving.contains(&slot.as_u64()))
            .map(|(key, _)| *key)
            .collect();
        for key in invalidated {
            self.laundry_remove(&key);
        }
        env.spcm
            .return_frames(env.kernel, self.id, free_seg, &give)?;
        self.trace(
            env.kernel,
            EventKind::Reclaim {
                manager: self.id.0,
                frames: give.len() as u64,
                forced: true,
            },
        );
        Ok(give.len() as u64)
    }

    fn segment_closed(
        &mut self,
        env: &mut Env<'_>,
        segment: SegmentId,
    ) -> Result<(), ManagerError> {
        let free_seg = self.free_seg(env)?;
        let pages: Vec<(PageNumber, PageFlags)> = env
            .kernel
            .segment(segment)?
            .resident()
            .map(|(p, e)| (p, e.flags))
            .collect();
        let is_file = matches!(
            self.managed.get(&segment.as_u32()),
            Some(ManagedSegment {
                backing: Backing::File(_)
            })
        );
        for (p, flags) in pages {
            // File data must survive the close; anonymous data dies with
            // the segment (no writeback).
            if is_file && flags.contains(PageFlags::DIRTY) {
                self.writeback(env, segment, p)?;
            }
            let slot = first_empty_slot(env.kernel, free_seg)?;
            env.kernel.migrate_pages(
                segment,
                free_seg,
                p,
                slot,
                1,
                PageFlags::RW,
                PageFlags::DIRTY | PageFlags::REFERENCED | PageFlags::MANAGER_B,
            )?;
            self.policy.note_removed(segment, p);
            self.laundry_remove(&(segment.as_u32(), p.as_u64()));
        }
        self.managed.remove(&segment.as_u32());
        Ok(())
    }

    fn tick(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        if self.free_count(env.kernel) < self.config.low_water {
            // Opportunistic refill; ignore refusal (we reclaim on demand).
            let _ = self.ensure_free(env, self.config.target_free);
        }
        // In the red on a tiered machine: demote cold DRAM pages to
        // cheaper tiers rather than waiting for the SPCM to seize them.
        if !env.kernel.tiers().is_dram_only()
            && env
                .spcm
                .market()
                .and_then(|mk| mk.balance(self.id))
                .is_some_and(|b| b < 0.0)
        {
            let _ = self.rebalance_demote(env, self.config.demote_batch);
        }
        self.sampling_sweep(env)
    }

    fn free_frames(&self, kernel: &Kernel) -> u64 {
        self.free_count(kernel)
    }

    fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    fn export_metrics(&self, m: &mut MetricsRegistry) {
        let id = self.id.0;
        let s = &self.stats;
        m.set(&format!("manager.{id}.faults"), s.faults);
        m.set(&format!("manager.{id}.minimal_faults"), s.minimal_faults);
        m.set(&format!("manager.{id}.file_fills"), s.file_fills);
        m.set(&format!("manager.{id}.swap_ins"), s.swap_ins);
        m.set(&format!("manager.{id}.writebacks"), s.writebacks);
        m.set(&format!("manager.{id}.reclaimed"), s.reclaimed);
        m.set(&format!("manager.{id}.laundry_rescues"), s.laundry_rescues);
        m.set(&format!("manager.{id}.sampling_faults"), s.sampling_faults);
        m.set(&format!("manager.{id}.cow_faults"), s.cow_faults);
        m.set(&format!("manager.{id}.append_batches"), s.append_batches);
        m.set(&format!("manager.{id}.migrate_calls"), s.migrate_calls);
        m.set(&format!("manager.{id}.demotions"), s.demotions);
        m.set(
            &format!("manager.{id}.zram_compressed"),
            self.zram_stats.compressed,
        );
        m.set(
            &format!("manager.{id}.zram_stored_bytes"),
            self.zram_stats.stored_bytes,
        );
        let io = &self.io_stats;
        m.set(&format!("manager.{id}.io_attempts"), io.attempts);
        m.set(&format!("manager.{id}.io_retries"), io.retries);
        m.set(&format!("manager.{id}.io_gave_up"), io.gave_up);
        m.set(
            &format!("manager.{id}.quarantined_pages"),
            io.quarantined_pages,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::AccessKind;

    fn machine_with(config: DefaultManagerConfig, frames: usize) -> (Machine, ManagerId) {
        let mut m = Machine::new(frames);
        let id = m.register_manager(Box::new(DefaultSegmentManager::with_config(
            ManagerMode::Server,
            config,
        )));
        m.set_default_manager(id);
        (m, id)
    }

    #[test]
    fn anonymous_first_touch_is_minimal_fault() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 1);
        // No file fill happened: store untouched.
        assert_eq!(m.store().read_count(), 0);
    }

    #[test]
    fn file_fault_fills_from_store() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        let content: Vec<u8> = (0..8192u32).map(|i| (i % 256) as u8).collect();
        m.store_mut().create_with("f", content.clone());
        let seg = m.open_file("f").unwrap();
        let mut buf = vec![0u8; 8192];
        m.load(seg, 0, &mut buf).unwrap();
        assert_eq!(buf, content);
        assert!(m.store().read_count() >= 2);
    }

    #[test]
    fn append_allocates_16k_batches() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        m.store_mut().create("out", 0);
        let seg = m.open_file("out").unwrap();
        m.kernel_mut().resize_segment(seg, 16).unwrap();
        // Touch the first page beyond EOF: the manager should allocate 4.
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 4);
        // Next three pages are already resident: no further manager calls.
        let calls = m.stats().manager_calls;
        for p in 1..4 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        assert_eq!(m.stats().manager_calls, calls);
    }

    #[test]
    fn eviction_writes_back_and_rescues() {
        let config = DefaultManagerConfig {
            target_free: 4,
            low_water: 1,
            refill_batch: 4,
            ..DefaultManagerConfig::default()
        };
        // Tiny machine: 24 frames total forces reclamation.
        let (mut m, id) = machine_with(config, 24);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        // Write distinct data to many pages, exceeding memory.
        for p in 0..40u64 {
            let data = [p as u8; 16];
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &data).unwrap();
        }
        // Earlier pages were evicted; re-reading them faults and refills
        // from swap (or rescues from laundry) with data intact.
        for p in 0..40u64 {
            let mut buf = [0u8; 16];
            m.load(seg, p * BASE_PAGE_SIZE, &mut buf).unwrap();
            assert_eq!(buf, [p as u8; 16], "page {p} lost its data");
        }
        let _ = id;
    }

    #[test]
    fn close_writes_file_pages_back() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        m.store_mut().create("out", 0);
        let seg = m.open_file("out").unwrap();
        m.uio_write(seg, 0, b"persist me").unwrap();
        m.close_segment(seg).unwrap();
        let f = m.store().find("out").unwrap();
        let mut buf = [0u8; 10];
        m.store_mut().read(f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
    }

    #[test]
    fn sampling_generates_protection_faults_and_restores_batches() {
        let config = DefaultManagerConfig {
            sample_batch: 8,
            protection_batch: 4,
            ..DefaultManagerConfig::default()
        };
        let (mut m, _) = machine_with(config, 256);
        let seg = m.create_segment(SegmentKind::Anonymous, 16).unwrap();
        for p in 0..8 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        m.tick().unwrap(); // revokes protection on the 8 resident pages
        let faults_before = m.kernel_stats().faults_protection;
        m.touch(seg, 0, AccessKind::Read).unwrap(); // sampling fault
        assert_eq!(m.kernel_stats().faults_protection, faults_before + 1);
        // The batch restored pages 0..4: touching them is fault-free.
        let calls = m.stats().manager_calls;
        for p in 1..4 {
            m.touch(seg, p, AccessKind::Read).unwrap();
        }
        assert_eq!(m.stats().manager_calls, calls);
        // Page 4 still revoked: next touch faults again.
        m.touch(seg, 4, AccessKind::Read).unwrap();
        assert_eq!(m.stats().manager_calls, calls + 1);
    }

    #[test]
    fn forced_reclaim_returns_frames_to_spcm() {
        let (mut m, id) = machine_with(DefaultManagerConfig::default(), 128);
        let seg = m.create_segment(SegmentKind::Anonymous, 32).unwrap();
        for p in 0..32 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        let granted_before = m.spcm().granted_to(id);
        assert!(granted_before >= 32);
        let returned = m.with_manager(id, |mgr, env| mgr.reclaim(env, 16)).unwrap();
        assert_eq!(returned, 16);
        assert_eq!(m.spcm().granted_to(id), granted_before - 16);
    }

    #[test]
    fn cow_fault_is_serviced() {
        let (mut m, _) = machine_with(DefaultManagerConfig::default(), 256);
        let source = m.create_segment(SegmentKind::Anonymous, 4).unwrap();
        m.store_bytes(source, 0, b"shared").unwrap();
        let child = m.create_segment(SegmentKind::Anonymous, 4).unwrap();
        m.kernel_mut()
            .bind_region(
                child,
                PageNumber(0),
                4,
                source,
                PageNumber(0),
                true,
                PageFlags::RW,
            )
            .unwrap();
        m.store_bytes(child, 0, b"BRANCH").unwrap();
        let mut buf = [0u8; 6];
        m.load(source, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        m.load(child, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"BRANCH");
        assert_eq!(m.kernel_stats().faults_cow, 1);
    }
}
