//! A conventional pin-style manager, for comparison with full external
//! page-cache management.
//!
//! The related-work section argues that pinning "does not provide the
//! application with complete information on the pages it has in memory"
//! and that systems must cap pinning: "the operating system cannot allow a
//! significant percentage of its page frame pool to be pinned without
//! compromising its ability to share this resource". This manager
//! implements exactly that restricted interface — `pin`/`unpin` with a
//! hard quota — so benchmarks can contrast it against managers that
//! control *which* frames to surrender.

use std::collections::BTreeSet;

use epcm_core::fault::FaultEvent;
use epcm_core::flags::PageFlags;
use epcm_core::kernel::Kernel;
use epcm_core::types::{ManagerId, PageNumber, SegmentId};

use crate::generic::{GenericManager, PlainSpec};
use crate::manager::{Env, ManagerError, ManagerMode, SegmentManager};

/// A manager with a Unix-`mlock`-style pin interface and quota.
#[derive(Debug)]
pub struct PinningManager {
    inner: GenericManager<PlainSpec>,
    pinned: BTreeSet<(u32, u64)>,
    quota: u64,
}

impl PinningManager {
    /// Creates a pinning manager allowed to pin at most `quota` pages.
    pub fn new(quota: u64) -> Self {
        PinningManager {
            inner: GenericManager::new(PlainSpec, ManagerMode::Server),
            pinned: BTreeSet::new(),
            quota,
        }
    }

    /// The pin quota.
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// Pages currently pinned.
    pub fn pinned_count(&self) -> u64 {
        self.pinned.len() as u64
    }

    /// Evicts up to `count` unpinned resident pages (see
    /// [`GenericManager::shrink`]).
    ///
    /// # Errors
    ///
    /// Kernel or store failures during eviction.
    pub fn shrink(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        self.inner.shrink(env, count)
    }

    /// Pins `count` pages starting at `page` (they must be resident — pin
    /// them by touching first). Pinned pages are never selected for
    /// eviction.
    ///
    /// # Errors
    ///
    /// [`ManagerError::PinQuotaExceeded`] past the quota, or kernel
    /// errors (e.g. a missing page).
    pub fn pin(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        count: u64,
    ) -> Result<(), ManagerError> {
        let new: Vec<(u32, u64)> = (0..count)
            .map(|i| (seg.as_u32(), page.as_u64() + i))
            .filter(|k| !self.pinned.contains(k))
            .collect();
        if self.pinned.len() as u64 + new.len() as u64 > self.quota {
            return Err(ManagerError::PinQuotaExceeded { limit: self.quota });
        }
        env.kernel
            .modify_page_flags(seg, page, count, PageFlags::PINNED, PageFlags::empty())?;
        self.pinned.extend(new);
        Ok(())
    }

    /// Unpins `count` pages starting at `page`. Unpinning a page that was
    /// never pinned is a no-op.
    ///
    /// # Errors
    ///
    /// Kernel errors.
    pub fn unpin(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        count: u64,
    ) -> Result<(), ManagerError> {
        env.kernel
            .modify_page_flags(seg, page, count, PageFlags::empty(), PageFlags::PINNED)?;
        for i in 0..count {
            self.pinned.remove(&(seg.as_u32(), page.as_u64() + i));
        }
        Ok(())
    }
}

impl SegmentManager for PinningManager {
    fn id(&self) -> ManagerId {
        self.inner.id()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn set_id(&mut self, id: ManagerId) {
        self.inner.set_id(id);
    }

    fn mode(&self) -> ManagerMode {
        self.inner.mode()
    }

    fn attach(&mut self, env: &mut Env<'_>, segment: SegmentId) -> Result<(), ManagerError> {
        self.inner.attach(env, segment)
    }

    fn handle_fault(&mut self, env: &mut Env<'_>, fault: &FaultEvent) -> Result<(), ManagerError> {
        self.inner.handle_fault(env, fault)
    }

    fn reclaim(&mut self, env: &mut Env<'_>, count: u64) -> Result<u64, ManagerError> {
        self.inner.reclaim(env, count)
    }

    fn segment_closed(
        &mut self,
        env: &mut Env<'_>,
        segment: SegmentId,
    ) -> Result<(), ManagerError> {
        self.pinned.retain(|&(s, _)| s != segment.as_u32());
        self.inner.segment_closed(env, segment)
    }

    fn tick(&mut self, env: &mut Env<'_>) -> Result<(), ManagerError> {
        self.inner.tick(env)
    }

    fn free_frames(&self, kernel: &Kernel) -> u64 {
        self.inner.free_frames(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::{AccessKind, SegmentKind};

    fn setup(quota: u64) -> (Machine, ManagerId, SegmentId) {
        let mut m = Machine::new(128);
        let id = m.register_manager(Box::new(PinningManager::new(quota)));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 32).unwrap();
        (m, id, seg)
    }

    #[test]
    fn pinned_pages_survive_reclaim() {
        let (mut m, id, seg) = setup(16);
        for p in 0..8 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        m.with_manager(id, |mgr, env| {
            let mgr = mgr.as_any_mut().downcast_mut::<PinningManager>().unwrap();
            mgr.pin(env, seg, PageNumber(0), 4)
        })
        .unwrap();
        m.with_manager(id, |mgr, env| {
            let mgr = mgr.as_any_mut().downcast_mut::<PinningManager>().unwrap();
            mgr.shrink(env, 6).map(|_| ())
        })
        .unwrap();
        // Pages 0..4 still resident; some of 4..8 were evicted.
        for p in 0..4 {
            assert!(
                m.kernel()
                    .segment(seg)
                    .unwrap()
                    .entry(PageNumber(p))
                    .is_some(),
                "pinned page {p} was evicted"
            );
        }
        assert!(m.kernel().resident_pages(seg).unwrap() < 8);
    }

    #[test]
    fn quota_is_enforced() {
        let (mut m, id, seg) = setup(2);
        for p in 0..4 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        let err = m
            .with_manager(id, |mgr, env| {
                let mgr = mgr.as_any_mut().downcast_mut::<PinningManager>().unwrap();
                mgr.pin(env, seg, PageNumber(0), 3)
            })
            .unwrap_err();
        assert!(err.to_string().contains("pin quota"));
        // Within quota succeeds, and re-pinning the same pages is free.
        m.with_manager(id, |mgr, env| {
            let mgr = mgr.as_any_mut().downcast_mut::<PinningManager>().unwrap();
            mgr.pin(env, seg, PageNumber(0), 2)?;
            mgr.pin(env, seg, PageNumber(0), 2)
        })
        .unwrap();
    }

    #[test]
    fn unpin_releases_quota_and_eviction() {
        let (mut m, id, seg) = setup(4);
        for p in 0..4 {
            m.touch(seg, p, AccessKind::Write).unwrap();
        }
        m.with_manager(id, |mgr, env| {
            let mgr = mgr.as_any_mut().downcast_mut::<PinningManager>().unwrap();
            mgr.pin(env, seg, PageNumber(0), 4)?;
            mgr.unpin(env, seg, PageNumber(0), 4)
        })
        .unwrap();
        m.with_manager(id, |mgr, env| {
            let mgr = mgr.as_any_mut().downcast_mut::<PinningManager>().unwrap();
            mgr.shrink(env, 4).map(|_| ())
        })
        .unwrap();
        assert_eq!(m.kernel().resident_pages(seg).unwrap(), 0);
    }
}
