//! Discardable pages: eviction without writeback.
//!
//! The paper's related-work section describes Subramanian's Mach external
//! pager that "takes account of dirty pages that do not need to be written
//! back", showing "significant performance improvements for a number of ML
//! programs by exploiting the fact that garbage pages can be discarded
//! without writeback" — and notes that both problems she hit (no knowledge
//! of physical memory availability, spurious zero-fills) are solved by
//! external page-cache management with no special kernel mechanism. This
//! manager is that case study on V++: an application (say, a garbage
//! collector) marks regions as garbage; at eviction time the manager drops
//! them instead of paging them out, and a later fault delivers a fresh
//! minimal-fault page.
//!
//! Non-discardable dirty pages are swapped conventionally, so the manager
//! is safe for general heaps.

use std::collections::{BTreeMap, BTreeSet};

use epcm_core::flags::PageFlags;
use epcm_core::kernel::Kernel;
use epcm_core::types::{PageNumber, SegmentId, BASE_PAGE_SIZE};
use epcm_sim::disk::FileId;

use crate::generic::{Disposition, Fill, GenericManager, Specialization};
use crate::manager::{Env, ManagerError, ManagerMode};

/// The discardable-pages specialisation.
///
/// Pages carrying [`PageFlags::MANAGER_A`] (set via [`mark_discardable`])
/// are dropped at eviction; everything else swaps normally.
#[derive(Debug, Default)]
pub struct DiscardableSpec {
    /// Per-segment swap file and the set of pages with valid swap copies.
    swap: BTreeMap<u32, (FileId, BTreeSet<u64>)>,
    /// Dirty pages discarded instead of written back.
    discarded: u64,
}

impl DiscardableSpec {
    /// Creates the specialisation.
    pub fn new() -> Self {
        DiscardableSpec::default()
    }

    /// Number of dirty pages dropped without writeback so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }
}

impl Specialization for DiscardableSpec {
    fn fill(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        buf: &mut [u8],
    ) -> Result<Fill, ManagerError> {
        if let Some((file, swapped)) = self.swap.get_mut(&seg.as_u32()) {
            // The swap copy stays valid while the page is clean; dirty
            // evictions overwrite it (dropping the entry here would lose
            // data on a later clean eviction).
            if swapped.contains(&page.as_u64()) {
                let latency = env.store.read(*file, page.as_u64() * BASE_PAGE_SIZE, buf)?;
                env.kernel.charge(latency);
                return Ok(Fill::Filled);
            }
        }
        // Discarded or never-written page: minimal fault (fresh zero/stale
        // same-user frame) — exactly the "reallocation without zero-fill"
        // saving the paper credits V++ with.
        Ok(Fill::Minimal)
    }

    fn evict_disposition(
        &self,
        _seg: SegmentId,
        _page: PageNumber,
        flags: PageFlags,
    ) -> Disposition {
        if flags.contains(PageFlags::MANAGER_A) {
            Disposition::Discard
        } else {
            Disposition::WriteBack
        }
    }

    fn write_back(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        data: &[u8],
    ) -> Result<(), ManagerError> {
        let (file, swapped) = match self.swap.get_mut(&seg.as_u32()) {
            Some(entry) => entry,
            None => {
                let f = env.store.create(&format!("gc-swap-{}", seg.as_u32()), 0);
                self.swap
                    .entry(seg.as_u32())
                    .or_insert((f, BTreeSet::new()))
            }
        };
        let latency = env
            .store
            .write(*file, page.as_u64() * BASE_PAGE_SIZE, data)?;
        env.kernel.charge(latency);
        swapped.insert(page.as_u64());
        Ok(())
    }
}

/// A manager whose applications can mark pages as garbage.
pub type DiscardableManager = GenericManager<DiscardableSpec>;

/// Creates a discardable-pages manager running in the faulting process.
pub fn discardable_manager() -> DiscardableManager {
    GenericManager::new(DiscardableSpec::new(), ManagerMode::FaultingProcess)
}

/// Marks `count` pages starting at `page` as discardable: their contents
/// need never reach backing store. Missing pages are skipped (a page that
/// was never materialised is trivially discardable).
///
/// # Errors
///
/// Kernel range/segment errors.
pub fn mark_discardable(
    kernel: &mut Kernel,
    seg: SegmentId,
    page: PageNumber,
    count: u64,
) -> Result<u64, epcm_core::KernelError> {
    let mut marked = 0;
    for i in 0..count {
        let p = page.offset(i);
        if kernel.segment(seg)?.entry(p).is_some() {
            kernel.modify_page_flags(seg, p, 1, PageFlags::MANAGER_A, PageFlags::empty())?;
            marked += 1;
        }
    }
    Ok(marked)
}

/// Clears the discardable mark (the data became live again).
///
/// # Errors
///
/// Kernel range/segment errors.
pub fn unmark_discardable(
    kernel: &mut Kernel,
    seg: SegmentId,
    page: PageNumber,
    count: u64,
) -> Result<(), epcm_core::KernelError> {
    for i in 0..count {
        let p = page.offset(i);
        if kernel.segment(seg)?.entry(p).is_some() {
            kernel.modify_page_flags(seg, p, 1, PageFlags::empty(), PageFlags::MANAGER_A)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::{AccessKind, SegmentKind};

    fn setup(frames: usize) -> (Machine, epcm_core::ManagerId, SegmentId) {
        let mut m = Machine::new(frames);
        let id = m.register_manager(Box::new(discardable_manager()));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        (m, id, seg)
    }

    #[test]
    fn live_pages_survive_eviction_via_swap() {
        let (mut m, id, seg) = setup(64);
        for p in 0..8u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[p as u8; 8])
                .unwrap();
        }
        m.with_manager(id, |mgr, env| {
            let mgr = mgr
                .as_any_mut()
                .downcast_mut::<DiscardableManager>()
                .unwrap();
            mgr.shrink(env, 8).map(|_| ())
        })
        .unwrap();
        for p in 0..8u64 {
            let mut buf = [0u8; 8];
            m.load(seg, p * BASE_PAGE_SIZE, &mut buf).unwrap();
            assert_eq!(buf, [p as u8; 8], "live page {p} lost");
        }
        // Swap file exists and was written.
        assert!(m.store().write_count() >= 8);
    }

    #[test]
    fn garbage_pages_discarded_without_io() {
        let (mut m, id, seg) = setup(64);
        for p in 0..8u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[0xAA; 8]).unwrap();
        }
        mark_discardable(m.kernel_mut(), seg, PageNumber(0), 8).unwrap();
        let writes_before = m.store().write_count();
        m.with_manager(id, |mgr, env| {
            let mgr = mgr
                .as_any_mut()
                .downcast_mut::<DiscardableManager>()
                .unwrap();
            mgr.shrink(env, 8).map(|_| ())
        })
        .unwrap();
        assert_eq!(
            m.store().write_count(),
            writes_before,
            "garbage pages must not be written back"
        );
        // Refaulting succeeds with a minimal fault. Contents are
        // unspecified: V++ deliberately skips the zero-fill when a frame
        // returns to the same user — the exact saving Subramanian had to
        // hack around in Mach (the collector overwrites the page anyway).
        let mut buf = [0u8; 8];
        m.load(seg, 0, &mut buf).unwrap();
        assert_eq!(m.kernel_stats().zero_fills, 0);
    }

    #[test]
    fn unmark_restores_writeback() {
        let (mut m, id, seg) = setup(64);
        m.store_bytes(seg, 0, b"keep me!").unwrap();
        mark_discardable(m.kernel_mut(), seg, PageNumber(0), 1).unwrap();
        unmark_discardable(m.kernel_mut(), seg, PageNumber(0), 1).unwrap();
        m.with_manager(id, |mgr, env| {
            let mgr = mgr
                .as_any_mut()
                .downcast_mut::<DiscardableManager>()
                .unwrap();
            mgr.shrink(env, 1).map(|_| ())
        })
        .unwrap();
        let mut buf = [0u8; 8];
        m.load(seg, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"keep me!");
    }

    #[test]
    fn mark_skips_missing_pages() {
        let (mut m, _, seg) = setup(64);
        m.touch(seg, 2, AccessKind::Write).unwrap();
        let marked = mark_discardable(m.kernel_mut(), seg, PageNumber(0), 8).unwrap();
        assert_eq!(marked, 1, "only the resident page can carry the flag");
    }

    #[test]
    fn discard_savings_visible_in_io_counts() {
        // The Subramanian result, miniature: identical workloads, with and
        // without discard marking; the marked run does less I/O.
        let run = |mark: bool| {
            let (mut m, id, seg) = setup(48);
            for p in 0..32u64 {
                m.store_bytes(seg, p * BASE_PAGE_SIZE, &[1u8; 64]).unwrap();
                if mark {
                    // Everything written is garbage (collector semantics).
                    mark_discardable(m.kernel_mut(), seg, PageNumber(p), 1).unwrap();
                }
            }
            m.with_manager(id, |mgr, env| {
                let mgr = mgr
                    .as_any_mut()
                    .downcast_mut::<DiscardableManager>()
                    .unwrap();
                mgr.shrink(env, 24).map(|_| ())
            })
            .unwrap();
            m.store().write_count()
        };
        let unmarked_io = run(false);
        let marked_io = run(true);
        assert!(marked_io < unmarked_io);
        assert_eq!(marked_io, 0);
    }
}
