//! Application-directed read-ahead.
//!
//! §1: "Scientific computations using large data sets can often predict
//! their data access patterns well in advance, which allows the disk
//! access latency to be overlapped with current computation, if efficient
//! application-directed readahead ... \[is\] supported by the operating
//! system." The prefetching specialisation issues asynchronous reads for
//! the next `depth` file pages whenever a page faults; a later fault on a
//! prefetched page waits only for the *remaining* transfer time (zero if
//! computation covered the latency), instead of a full device access.
//!
//! Asynchrony on a single virtual timeline is modelled by arrival
//! timestamps: a prefetch issued at `t` for the `k`-th page ahead arrives
//! at `t + k × block_time`; the byte transfer happens at fault time but
//! the clock is only charged the unexpired remainder.

use std::collections::BTreeMap;

use epcm_core::types::{PageNumber, SegmentId, SegmentKind, BASE_PAGE_SIZE};
use epcm_sim::clock::{Micros, Timestamp};
use epcm_sim::disk::{Device, FileId};

use crate::generic::{Fill, GenericManager, Specialization};
use crate::manager::{Env, ManagerError, ManagerMode};

/// Counters for prefetch effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetches issued.
    pub issued: u64,
    /// Faults fully covered by a completed prefetch (no wait).
    pub full_hits: u64,
    /// Faults that waited for an in-flight prefetch (partial overlap).
    pub partial_hits: u64,
    /// Faults paying the full device latency.
    pub misses: u64,
    /// Total virtual time saved versus unprefetched accesses.
    pub saved: Micros,
}

/// The read-ahead specialisation for cached-file segments.
#[derive(Debug)]
pub struct PrefetchSpec {
    depth: u64,
    files: BTreeMap<u32, FileId>,
    inflight: BTreeMap<(u32, u64), Timestamp>,
    stats: PrefetchStats,
}

impl PrefetchSpec {
    /// Creates a spec prefetching `depth` pages ahead of each fault.
    pub fn new(depth: u64) -> Self {
        PrefetchSpec {
            depth,
            files: BTreeMap::new(),
            inflight: BTreeMap::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// Read-ahead depth in pages.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn block_time(device: Device) -> Micros {
        match device {
            Device::LocalDisk {
                sequential_block, ..
            } => sequential_block,
            Device::NetworkServer { per_block } => per_block,
            Device::Instant => Micros::ZERO,
        }
    }
}

impl Specialization for PrefetchSpec {
    fn attached(&mut self, env: &mut Env<'_>, segment: SegmentId) -> Result<(), ManagerError> {
        if let SegmentKind::CachedFile(f) = env.kernel.segment(segment)?.kind() {
            self.files.insert(segment.as_u32(), f);
        }
        Ok(())
    }

    fn fill(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        buf: &mut [u8],
    ) -> Result<Fill, ManagerError> {
        let Some(&file) = self.files.get(&seg.as_u32()) else {
            return Ok(Fill::Minimal); // anonymous segment
        };
        let size = env.store.size(file).map_err(epcm_core::KernelError::from)?;
        let offset = page.as_u64() * BASE_PAGE_SIZE;
        if offset >= size {
            return Ok(Fill::Minimal); // append
        }
        let n = BASE_PAGE_SIZE.min(size - offset) as usize;
        let now = env.kernel.now();
        let full_latency = env.store.read(file, offset, &mut buf[..n])?;
        match self.inflight.remove(&(seg.as_u32(), page.as_u64())) {
            Some(arrival) if arrival <= now => {
                // Transfer completed while the application computed.
                self.stats.full_hits += 1;
                self.stats.saved += full_latency;
            }
            Some(arrival) => {
                // Wait out the remainder only.
                let wait = arrival.duration_since(now);
                env.kernel.charge(wait);
                self.stats.partial_hits += 1;
                self.stats.saved += full_latency.saturating_sub(wait);
            }
            None => {
                env.kernel.charge(full_latency);
                self.stats.misses += 1;
            }
        }
        // Issue read-ahead for the pages following this one.
        let block_time = Self::block_time(env.store.device());
        let now = env.kernel.now();
        let mut k = 0;
        for i in 1..=self.depth {
            let p = page.as_u64() + i;
            if p * BASE_PAGE_SIZE >= size {
                break;
            }
            let key = (seg.as_u32(), p);
            let already_resident = env.kernel.segment(seg)?.entry(PageNumber(p)).is_some();
            if already_resident || self.inflight.contains_key(&key) {
                continue;
            }
            k += 1;
            self.inflight.insert(key, now + block_time * k);
            self.stats.issued += 1;
        }
        Ok(Fill::Filled)
    }
}

/// A cached-file manager with sequential read-ahead.
pub type PrefetchManager = GenericManager<PrefetchSpec>;

/// Creates a prefetching manager running in the faulting process.
pub fn prefetch_manager(depth: u64) -> PrefetchManager {
    GenericManager::new(PrefetchSpec::new(depth), ManagerMode::FaultingProcess)
}

/// Creates a prefetching manager whose page operations ride the batched
/// submission/completion rings ([`epcm_core::ring`]). Single-entry
/// batches charge exactly what the synchronous calls would, so the
/// read-ahead timing analysis is unchanged.
pub fn batched_prefetch_manager(depth: u64) -> PrefetchManager {
    GenericManager::new(PrefetchSpec::new(depth), ManagerMode::FaultingProcess)
        .batched_abi(epcm_core::ring::DEFAULT_RING_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::AccessKind;
    use epcm_sim::disk::Device;

    /// Builds a machine with a prefetching manager over a 64-page file on
    /// a 1992 disk.
    fn setup(depth: u64) -> (Machine, epcm_core::ManagerId, SegmentId) {
        let mut m = Machine::builder(512).device(Device::disk_1992()).build();
        let id = m.register_manager(Box::new(prefetch_manager(depth)));
        m.set_default_manager(id);
        let content: Vec<u8> = (0..64 * BASE_PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        m.store_mut().create_with("data", content);
        let seg = m.open_file("data").unwrap();
        (m, id, seg)
    }

    fn spec_stats(m: &Machine, id: epcm_core::ManagerId) -> PrefetchStats {
        m.manager(id)
            .unwrap()
            .as_any()
            .downcast_ref::<PrefetchManager>()
            .unwrap()
            .spec()
            .stats()
    }

    /// Sequential scan with compute between pages: prefetch hides latency.
    fn scan(m: &mut Machine, seg: SegmentId, pages: u64, compute_per_page: Micros) -> Micros {
        let t0 = m.now();
        for p in 0..pages {
            m.touch(seg, p, AccessKind::Read).unwrap();
            m.kernel_mut().charge(compute_per_page); // the computation
        }
        m.now().duration_since(t0)
    }

    #[test]
    fn prefetch_hides_disk_latency_under_compute() {
        // Compute per page (3 ms) exceeds sequential block time (1.5 ms):
        // after the first miss, every fault should be a full hit.
        let (mut m0, id0, seg0) = setup(0);
        let unprefetched = scan(&mut m0, seg0, 32, Micros::from_millis(3));
        let (mut m8, id8, seg8) = setup(8);
        let prefetched = scan(&mut m8, seg8, 32, Micros::from_millis(3));
        assert!(
            prefetched < unprefetched,
            "prefetch {prefetched} not faster than {unprefetched}"
        );
        let s = spec_stats(&m8, id8);
        assert_eq!(s.misses, 1, "only the first access misses");
        assert!(s.full_hits >= 25, "full hits: {}", s.full_hits);
        assert!(s.saved > Micros::ZERO);
        let s0 = spec_stats(&m0, id0);
        assert_eq!(s0.issued, 0);
        let _ = seg0;
    }

    #[test]
    fn prefetch_partial_overlap_with_thin_compute() {
        // Barely any compute: prefetches are still in flight at fault
        // time, so we see partial hits (waiting the remainder) — still an
        // improvement over full random-access latency.
        let (mut m, id, seg) = setup(4);
        let elapsed = scan(&mut m, seg, 16, Micros::new(100));
        let s = spec_stats(&m, id);
        assert!(s.partial_hits > 0, "expected partial hits: {s:?}");
        // Sequential transfers bound the total: far less than 16 random
        // accesses (16 ms each).
        assert!(elapsed < Micros::from_millis(16 * 16));
    }

    #[test]
    fn no_prefetch_past_end_of_file() {
        let (mut m, id, seg) = setup(128); // depth > file size
        m.touch(seg, 60, AccessKind::Read).unwrap();
        let s = spec_stats(&m, id);
        assert_eq!(s.issued, 3, "only pages 61..64 exist to prefetch");
    }

    #[test]
    fn batched_prefetch_matches_unbatched_to_the_microsecond() {
        // Prefetch issues only single-op ring batches (one migrate per
        // fill), which are cost-neutral: the batched scan reproduces the
        // unbatched scan's timeline and hit/miss profile exactly, while
        // demonstrably riding the ring.
        let run = |batched: bool| {
            let mut m = Machine::builder(512).device(Device::disk_1992()).build();
            let mgr = if batched {
                batched_prefetch_manager(8)
            } else {
                prefetch_manager(8)
            };
            let id = m.register_manager(Box::new(mgr));
            m.set_default_manager(id);
            let content: Vec<u8> = (0..64 * BASE_PAGE_SIZE).map(|i| (i % 253) as u8).collect();
            m.store_mut().create_with("data", content);
            let seg = m.open_file("data").unwrap();
            let elapsed = scan(&mut m, seg, 32, Micros::from_millis(3));
            (elapsed, spec_stats(&m, id), m.kernel().stats().ring_ops)
        };
        let (t_sync, s_sync, r_sync) = run(false);
        let (t_ring, s_ring, r_ring) = run(true);
        assert_eq!(t_sync, t_ring, "single-op batches are cost-neutral");
        assert_eq!(s_sync, s_ring);
        assert_eq!(r_sync, 0);
        assert!(r_ring >= 32, "every fill should ride the ring: {r_ring}");
    }

    #[test]
    fn anonymous_segments_fall_back_to_minimal() {
        let mut m = Machine::new(128);
        let id = m.register_manager(Box::new(prefetch_manager(8)));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 8).unwrap();
        m.touch(seg, 0, AccessKind::Write).unwrap();
        assert_eq!(spec_stats(&m, id).issued, 0);
    }
}
