//! Replicated writeback — §2.1's other named scheme: "a process-level
//! module can readily implement a variety of sophisticated schemes,
//! including replicated writeback".
//!
//! Every dirty page is written to **two** backing files at eviction;
//! a fill consults the primary and falls back to the replica, so the
//! loss (or corruption) of one copy is survivable. The kernel knows
//! nothing about any of this — it is pure manager policy.

use std::collections::BTreeMap;

use epcm_core::types::{PageNumber, SegmentId, BASE_PAGE_SIZE};
use epcm_sim::disk::FileId;

use crate::generic::{Fill, GenericManager, Specialization};
use crate::manager::{Env, ManagerError, ManagerMode};

/// Statistics for the replicated store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicateStats {
    /// Pages written (to both replicas).
    pub writebacks: u64,
    /// Fills served from the primary.
    pub primary_reads: u64,
    /// Fills that had to fall back to the replica.
    pub failover_reads: u64,
}

/// The replicated-writeback specialisation.
#[derive(Debug, Default)]
pub struct ReplicateSpec {
    stores: BTreeMap<u32, Replicas>,
    /// Fault injection: when true, the primary is treated as lost.
    primary_failed: bool,
    stats: ReplicateStats,
}

#[derive(Debug)]
struct Replicas {
    primary: FileId,
    replica: FileId,
    valid: std::collections::BTreeSet<u64>,
}

impl ReplicateSpec {
    /// Creates the specialisation.
    pub fn new() -> Self {
        ReplicateSpec::default()
    }

    /// Statistics.
    pub fn stats(&self) -> ReplicateStats {
        self.stats
    }

    /// Fault injection: drop the primary store. Subsequent fills come
    /// from the replica.
    pub fn fail_primary(&mut self) {
        self.primary_failed = true;
    }
}

impl Specialization for ReplicateSpec {
    fn fill(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        buf: &mut [u8],
    ) -> Result<Fill, ManagerError> {
        let Some(replicas) = self.stores.get(&seg.as_u32()) else {
            return Ok(Fill::Minimal);
        };
        if !replicas.valid.contains(&page.as_u64()) {
            return Ok(Fill::Minimal);
        }
        let offset = page.as_u64() * BASE_PAGE_SIZE;
        if self.primary_failed {
            let latency = env.store.read(replicas.replica, offset, buf)?;
            env.kernel.charge(latency);
            self.stats.failover_reads += 1;
        } else {
            let latency = env.store.read(replicas.primary, offset, buf)?;
            env.kernel.charge(latency);
            self.stats.primary_reads += 1;
        }
        Ok(Fill::Filled)
    }

    fn write_back(
        &mut self,
        env: &mut Env<'_>,
        seg: SegmentId,
        page: PageNumber,
        data: &[u8],
    ) -> Result<(), ManagerError> {
        let replicas = match self.stores.get_mut(&seg.as_u32()) {
            Some(r) => r,
            None => {
                let primary = env.store.create(&format!("repl-{}-a", seg.as_u32()), 0);
                let replica = env.store.create(&format!("repl-{}-b", seg.as_u32()), 0);
                self.stores.entry(seg.as_u32()).or_insert(Replicas {
                    primary,
                    replica,
                    valid: Default::default(),
                })
            }
        };
        let offset = page.as_u64() * BASE_PAGE_SIZE;
        let l1 = env.store.write(replicas.primary, offset, data)?;
        let l2 = env.store.write(replicas.replica, offset, data)?;
        env.kernel.charge(l1 + l2);
        replicas.valid.insert(page.as_u64());
        self.stats.writebacks += 1;
        Ok(())
    }
}

/// A manager whose dirty pages are written back twice.
pub type ReplicatingManager = GenericManager<ReplicateSpec>;

/// Creates a replicating manager running in the faulting process.
pub fn replicating_manager() -> ReplicatingManager {
    GenericManager::new(ReplicateSpec::new(), ManagerMode::FaultingProcess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use epcm_core::types::SegmentKind;

    fn setup() -> (Machine, epcm_core::ManagerId, SegmentId) {
        let mut m = Machine::new(64);
        let id = m.register_manager(Box::new(replicating_manager()));
        m.set_default_manager(id);
        let seg = m.create_segment(SegmentKind::Anonymous, 64).unwrap();
        (m, id, seg)
    }

    fn evict(m: &mut Machine, id: epcm_core::ManagerId, n: u64) {
        m.with_manager(id, |mgr, env| {
            let mgr = mgr
                .as_any_mut()
                .downcast_mut::<ReplicatingManager>()
                .unwrap();
            mgr.shrink(env, n).map(|_| ())
        })
        .unwrap();
    }

    #[test]
    fn writeback_goes_to_both_replicas() {
        let (mut m, id, seg) = setup();
        for p in 0..4u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[p as u8 + 1; 64])
                .unwrap();
        }
        evict(&mut m, id, 4);
        let a = m.store().find("repl-1-a").expect("primary");
        let b = m.store().find("repl-1-b").expect("replica");
        for p in 0..4u64 {
            let mut ba = [0u8; 64];
            let mut bb = [0u8; 64];
            m.store_mut().read(a, p * BASE_PAGE_SIZE, &mut ba).unwrap();
            m.store_mut().read(b, p * BASE_PAGE_SIZE, &mut bb).unwrap();
            assert_eq!(ba, [p as u8 + 1; 64]);
            assert_eq!(ba, bb, "replicas diverge on page {p}");
        }
    }

    #[test]
    fn survives_primary_failure() {
        let (mut m, id, seg) = setup();
        for p in 0..6u64 {
            m.store_bytes(seg, p * BASE_PAGE_SIZE, &[0xAB; 128])
                .unwrap();
        }
        evict(&mut m, id, 6);
        // Kill the primary store.
        m.with_manager(id, |mgr, _| {
            mgr.as_any_mut()
                .downcast_mut::<ReplicatingManager>()
                .unwrap()
                .spec_mut()
                .fail_primary();
            Ok(())
        })
        .unwrap();
        // Every page still reads back intact, from the replica.
        for p in 0..6u64 {
            let mut buf = [0u8; 128];
            m.load(seg, p * BASE_PAGE_SIZE, &mut buf).unwrap();
            assert_eq!(buf, [0xAB; 128], "page {p} lost with primary down");
        }
        let stats = m
            .manager(id)
            .unwrap()
            .as_any()
            .downcast_ref::<ReplicatingManager>()
            .unwrap()
            .spec()
            .stats();
        assert_eq!(stats.failover_reads, 6);
        assert_eq!(stats.primary_reads, 0);
    }

    #[test]
    fn healthy_fills_use_the_primary() {
        let (mut m, id, seg) = setup();
        m.store_bytes(seg, 0, &[1; 8]).unwrap();
        evict(&mut m, id, 1);
        let mut buf = [0u8; 8];
        m.load(seg, 0, &mut buf).unwrap();
        let stats = m
            .manager(id)
            .unwrap()
            .as_any()
            .downcast_ref::<ReplicatingManager>()
            .unwrap()
            .spec()
            .stats();
        assert_eq!(stats.primary_reads, 1);
        assert_eq!(stats.failover_reads, 0);
    }
}
