//! Figure 1, executable: a virtual address space composed from code, data
//! and stack segments through bound regions — including a copy-on-write
//! binding for the data segment, as `fork` would create.
//!
//! ```text
//! cargo run --example address_space
//! ```

use epcm::core::{AccessKind, PageFlags, PageNumber, SegmentKind};
use epcm::managers::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::with_default_manager(2048);

    // The component segments (in V++ these are cached files / anonymous
    // segments in their own right).
    let code = machine.create_segment(SegmentKind::Anonymous, 16)?;
    let data = machine.create_segment(SegmentKind::Anonymous, 32)?;
    let stack = machine.create_segment(SegmentKind::Anonymous, 8)?;
    machine.store_bytes(code, 0, b"\x27\xbd\xff\xd8")?; // some MIPS prologue bytes
    machine.store_bytes(data, 0, b"initialised data")?;

    // The virtual address space segment, with three bound regions:
    //   pages   0..16  -> code   (read/execute)
    //   pages  16..48  -> data   (copy-on-write!)
    //   pages  56..64  -> stack  (read/write)
    let aspace = machine.create_segment(SegmentKind::AddressSpace, 64)?;
    let k = machine.kernel_mut();
    k.bind_region(
        aspace,
        PageNumber(0),
        16,
        code,
        PageNumber(0),
        false,
        PageFlags::READ | PageFlags::EXECUTE,
    )?;
    k.bind_region(
        aspace,
        PageNumber(16),
        32,
        data,
        PageNumber(0),
        true,
        PageFlags::RW,
    )?;
    k.bind_region(
        aspace,
        PageNumber(56),
        8,
        stack,
        PageNumber(0),
        false,
        PageFlags::RW,
    )?;

    println!("Figure 1: Kernel Implementation of a Virtual Address Space\n");
    println!("{}", machine.kernel().segment(aspace)?);
    for r in machine.kernel().segment(aspace)?.regions() {
        println!(
            "  region: aspace pages {:>2}..{:<2} -> {} pages {}..{}  cow={} prot={}",
            r.at.as_u64(),
            r.at.as_u64() + r.pages,
            r.target,
            r.target_page.as_u64(),
            r.target_page.as_u64() + r.pages,
            r.cow,
            r.protection
        );
    }

    // Reads through the address space reach the bound segments:
    let mut buf = [0u8; 16];
    machine.load(aspace, 16 * 4096, &mut buf)?;
    println!("\nread via data region: {:?}", std::str::from_utf8(&buf)?);

    // Writing to the code region is a protection error — the binding caps
    // access at read/execute:
    let denied = machine.touch(aspace, 0, AccessKind::Write);
    println!(
        "write to code region: {}",
        if denied.is_err() {
            "denied (as bound)"
        } else {
            "?!"
        }
    );

    // Writing the COW data region gives this address space a private
    // copy; the underlying data segment is untouched:
    machine.store_bytes(aspace, 16 * 4096, b"private copy here")?;
    machine.load(data, 0, &mut buf)?;
    println!(
        "data segment after COW write: {:?}",
        std::str::from_utf8(&buf)?
    );
    let mut priv_buf = [0u8; 17];
    machine.load(aspace, 16 * 4096, &mut priv_buf)?;
    println!(
        "address space sees:           {:?}",
        std::str::from_utf8(&priv_buf)?
    );
    println!(
        "\nCOW copies performed by the kernel: {}",
        machine.kernel_stats().cow_copies
    );
    Ok(())
}
