//! Quickstart: a five-minute tour of external page-cache management.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use epcm::core::{AccessKind, PageNumber, SegmentKind};
use epcm::managers::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16 MB machine (4096 x 4 KB frames) with the default segment
    // manager — the configuration a conventional program sees.
    let mut machine = Machine::with_default_manager(4096);
    println!(
        "machine: {} frames, all in the boot segment",
        machine.kernel().frames().len()
    );

    // Anonymous memory: first touches are minimal faults resolved by the
    // manager migrating frames out of its free-page segment.
    let heap = machine.create_segment(SegmentKind::Anonymous, 64)?;
    machine.store_bytes(heap, 0, b"application-controlled physical memory")?;
    let mut buf = [0u8; 38];
    machine.load(heap, 0, &mut buf)?;
    println!("heap roundtrip: {:?}", std::str::from_utf8(&buf)?);

    // Cached files through the UIO block interface.
    machine
        .store_mut()
        .create_with("greeting", b"hello from the file store".to_vec());
    let file = machine.open_file("greeting")?;
    let mut content = vec![0u8; 25];
    machine.uio_read(file, 0, &mut content)?;
    println!("file read:      {:?}", std::str::from_utf8(&content)?);

    // The application can see exactly what it has in memory -
    // GetPageAttributes exposes flags and physical placement.
    machine.touch(heap, 5, AccessKind::Write)?;
    let attrs = machine
        .kernel_mut()
        .get_page_attributes(heap, PageNumber(0), 8)?;
    println!("heap pages 0..8 (present/flags/physical address):");
    for a in &attrs {
        println!(
            "  {}: present={} flags={} phys={:?}",
            a.page,
            a.present,
            a.flags,
            a.phys_addr()
        );
    }

    // Everything is accounted: manager calls, migrations, virtual time.
    let stats = machine.kernel_stats();
    println!(
        "\nactivity: {} faults, {} MigratePages calls ({} pages), {} manager calls, t={}",
        stats.faults(),
        stats.migrate_calls,
        stats.pages_migrated,
        machine.stats().manager_calls,
        machine.now(),
    );
    Ok(())
}
