//! The large-scale matrix computation of §2.2: "in a large-scale matrix
//! computation, the manager may be able to prefetch pages of matrices to
//! minimize the effect of disk latency on the computation while
//! recognizing that it can simply discard dirty pages of some
//! intermediate matrix rather than writing them back, thereby conserving
//! I/O bandwidth."
//!
//! Pipeline: C = f(A, B) via an intermediate T. A and B stream from disk
//! (prefetched), T is pure scratch (discarded, never written back), C is
//! the result (written back once).
//!
//! ```text
//! cargo run --release --example matrix_pipeline
//! ```

use epcm::core::{PageNumber, SegmentKind, BASE_PAGE_SIZE};
use epcm::managers::discard::{discardable_manager, mark_discardable, DiscardableManager};
use epcm::managers::prefetch::prefetch_manager;
use epcm::managers::Machine;
use epcm::sim::clock::Micros;
use epcm::sim::disk::Device;

const MATRIX_PAGES: u64 = 128; // 512 KB per matrix

fn run(
    prefetch_depth: u64,
    discard_scratch: bool,
) -> Result<(Micros, u64), Box<dyn std::error::Error>> {
    let mut m = Machine::builder(640).device(Device::disk_1992()).build();
    // Input matrices are cached files under a prefetching manager...
    let pf = m.register_manager(Box::new(prefetch_manager(prefetch_depth)));
    // ...scratch and result are anonymous memory under a discardable manager.
    let dm = m.register_manager(Box::new(discardable_manager()));
    m.set_default_manager(dm);

    m.store_mut()
        .create("A", (MATRIX_PAGES * BASE_PAGE_SIZE) as usize);
    m.store_mut()
        .create("B", (MATRIX_PAGES * BASE_PAGE_SIZE) as usize);
    m.set_default_manager(pf);
    let a = m.open_file("A")?;
    let b = m.open_file("B")?;
    m.set_default_manager(dm);
    let scratch = m.create_segment(SegmentKind::Anonymous, MATRIX_PAGES)?;
    let result = m.create_segment(SegmentKind::Anonymous, MATRIX_PAGES)?;

    let t0 = m.now();
    // Pass 1: stream A and B, writing the intermediate T.
    for p in 0..MATRIX_PAGES {
        m.touch(a, p, epcm::core::AccessKind::Read)?;
        m.touch(b, p, epcm::core::AccessKind::Read)?;
        m.store_bytes(scratch, p * BASE_PAGE_SIZE, &[1u8; 64])?;
        m.kernel_mut().charge(Micros::from_millis(2)); // FLOPs
    }
    // Pass 2: reduce T into the result. The application knows page p of
    // T is garbage the moment it has been consumed, and tells its
    // manager immediately — so eviction under the pressure of this very
    // pass never writes consumed scratch back.
    for p in 0..MATRIX_PAGES {
        let mut buf = [0u8; 64];
        m.load(scratch, p * BASE_PAGE_SIZE, &mut buf)?;
        m.store_bytes(result, p * BASE_PAGE_SIZE, &buf)?;
        if discard_scratch {
            mark_discardable(m.kernel_mut(), scratch, PageNumber(p), 1)?;
        }
        m.kernel_mut().charge(Micros::from_millis(1));
    }
    // Memory pressure at the end of the timestep (the next timestep's
    // matrices need the frames): the manager evicts the scratch matrix.
    m.with_manager(dm, |mgr, env| {
        let mgr = mgr
            .as_any_mut()
            .downcast_mut::<DiscardableManager>()
            .unwrap();
        mgr.shrink(env, MATRIX_PAGES).map(|_| ())
    })?;
    Ok((m.now().duration_since(t0), m.store().write_count()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("C = f(A, B) through a scratch matrix T; 512 KB matrices, 1992 disk\n");
    println!("{:<44} {:>12} {:>10}", "configuration", "elapsed", "writes");
    for (label, depth, discard) in [
        ("no prefetch, scratch written back", 0, false),
        ("prefetch 8, scratch written back", 8, false),
        ("no prefetch, scratch discarded", 0, true),
        ("prefetch 8, scratch discarded (paper's plan)", 8, true),
    ] {
        let (elapsed, writes) = run(depth, discard)?;
        println!("{label:<44} {:>12} {writes:>10}", elapsed.to_string());
    }
    println!("\nPrefetch hides the input latency; discarding the intermediate matrix");
    println!("eliminates its writeback I/O entirely — both are manager policy, not kernel code.");
    Ok(())
}
