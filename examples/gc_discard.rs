//! The discardable-pages scenario (Subramanian's ML result, recreated on
//! V++): a garbage collector marks dead pages as discardable, so eviction
//! skips the writeback entirely — without any special kernel mechanism.
//!
//! ```text
//! cargo run --example gc_discard
//! ```

use epcm::core::{PageNumber, SegmentKind, BASE_PAGE_SIZE};
use epcm::managers::discard::{discardable_manager, mark_discardable, DiscardableManager};
use epcm::managers::Machine;
use epcm::sim::disk::Device;

fn collection_cycle(mark_garbage: bool) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    // Small memory (0.75 MB + pools) on a real disk so eviction I/O hurts.
    let mut machine = Machine::builder(256).device(Device::disk_1992()).build();
    let id = machine.register_manager(Box::new(discardable_manager()));
    machine.set_default_manager(id);
    let heap = machine.create_segment(SegmentKind::Anonymous, 512)?;

    // The mutator allocates 160 pages of objects...
    for p in 0..160u64 {
        machine.store_bytes(heap, p * BASE_PAGE_SIZE, &[0xCD; 128])?;
    }
    // ...then a collection finds that everything past the first 40 pages
    // (the survivors it just compacted) is garbage.
    if mark_garbage {
        mark_discardable(machine.kernel_mut(), heap, PageNumber(40), 120)?;
    }
    // Memory pressure: shrink the heap's residency by 120 pages.
    let t0 = machine.now();
    machine.with_manager(id, |mgr, env| {
        let mgr = mgr
            .as_any_mut()
            .downcast_mut::<DiscardableManager>()
            .expect("discardable manager");
        mgr.shrink(env, 120).map(|_| ())
    })?;
    let evict_time = machine.now().duration_since(t0).as_micros() / 1000;
    Ok((machine.store().write_count(), evict_time))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (writes_plain, ms_plain) = collection_cycle(false)?;
    let (writes_gc, ms_gc) = collection_cycle(true)?;
    println!("evicting 120 heap pages under memory pressure:\n");
    println!("  without discard marking: {writes_plain:>3} page writebacks, {ms_plain:>5} ms");
    println!("  with    discard marking: {writes_gc:>3} page writebacks, {ms_gc:>5} ms");
    println!(
        "\nGarbage pages were dropped without writeback ({}x less eviction I/O, {:.1}x faster),",
        writes_plain.max(1) / writes_gc.max(1),
        ms_plain as f64 / ms_gc.max(1) as f64
    );
    println!("and re-allocating them later needs no zero-fill (same-user reallocation).");
    Ok(())
}
