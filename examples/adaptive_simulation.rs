//! The MP3D scenario from §1: "a large scale parallel particle simulation
//! ... could automatically adjust the number of particles it uses for a
//! run, and thus the amount of memory it requires, based on availability
//! of physical memory."
//!
//! Two simulations run the same science: one queries the SPCM and sizes
//! its particle array to what it can actually get; the other assumes
//! memory is plentiful and thrashes.
//!
//! ```text
//! cargo run --release --example adaptive_simulation
//! ```

use epcm::core::{AccessKind, SegmentKind, BASE_PAGE_SIZE};
use epcm::managers::default_manager::{DefaultManagerConfig, DefaultSegmentManager};
use epcm::managers::{Machine, ManagerMode};
use epcm::sim::clock::Micros;
use epcm::sim::disk::Device;

const TIMESTEPS: u64 = 5;

/// One simulation run with `particle_pages` pages of particle state.
/// Returns elapsed time and fault count.
fn simulate(
    machine_frames: usize,
    particle_pages: u64,
) -> Result<(Micros, u64), Box<dyn std::error::Error>> {
    let mut m = Machine::builder(machine_frames)
        .device(Device::disk_1992())
        .spcm_reserve(8)
        .build();
    let id = m.register_manager(Box::new(DefaultSegmentManager::with_config(
        ManagerMode::Server,
        DefaultManagerConfig {
            target_free: 16,
            low_water: 4,
            refill_batch: 16,
            ..Default::default()
        },
    )));
    m.set_default_manager(id);
    let particles = m.create_segment(SegmentKind::Anonymous, 4096)?;
    let t0 = m.now();
    for _step in 0..TIMESTEPS {
        // Each timestep scans every particle page (move + collide).
        for p in 0..particle_pages {
            m.touch(particles, p, AccessKind::Write)?;
            m.kernel_mut().charge(Micros::new(200)); // per-page compute
        }
    }
    let faults = m.kernel_stats().faults();
    Ok((m.now().duration_since(t0), faults))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = 256; // 1 MB machine

    // The adaptive program asks the system what it can have...
    let probe = Machine::builder(frames).spcm_reserve(8).build();
    let available = probe.spcm().available(probe.kernel());
    // ...keeps headroom for the manager's pool, and sizes accordingly.
    let adaptive_pages = available.saturating_sub(32);
    // The oblivious program was written for a bigger machine.
    let oblivious_pages = frames as u64 * 2;

    println!("machine: {frames} frames; SPCM reports {available} grantable\n");
    let (t_adaptive, f_adaptive) = simulate(frames, adaptive_pages)?;
    let (t_oblivious, f_oblivious) = simulate(frames, oblivious_pages)?;

    println!(
        "{:<34} {:>10} pages {:>12} {:>8} faults",
        "configuration", "particles", "elapsed", ""
    );
    println!(
        "{:<34} {:>10} {:>18} {:>8}",
        "adaptive (asked the SPCM)",
        adaptive_pages,
        t_adaptive.to_string(),
        f_adaptive
    );
    println!(
        "{:<34} {:>10} {:>18} {:>8}",
        "oblivious (assumed plenty)",
        oblivious_pages,
        t_oblivious.to_string(),
        f_oblivious
    );

    // Science per second: the adaptive run does fewer particles per step
    // but vastly more steps per unit time.
    let science = |pages: u64, t: Micros| (pages * TIMESTEPS) as f64 / t.as_secs_f64() / 1000.0;
    println!(
        "\nthroughput: adaptive {:.0}k particle-pages/s vs oblivious {:.0}k/s",
        science(adaptive_pages, t_adaptive),
        science(oblivious_pages, t_oblivious)
    );
    println!("Knowing its physical allotment, the program picks a run size that never pages;");
    println!("the oblivious run re-faults its working set from disk every timestep.");
    println!("(MP3D averages many runs, so more smaller runs = the same science, sooner.)");
    let _ = BASE_PAGE_SIZE;
    Ok(())
}
