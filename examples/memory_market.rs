//! The memory-market economy of §2.4: processes pay `M*D*T` drams for
//! memory out of a per-second income, the SPCM defers requests the
//! account cannot afford, forces reclamation from bankrupt processes, and
//! long-run memory shares track income shares — "its programs also
//! receive an equal share of the machine over time".
//!
//! ```text
//! cargo run --example memory_market
//! ```

use epcm::core::{AccessKind, ManagerId, SegmentKind, UserId};
use epcm::managers::generic::{GenericManager, PlainSpec};
use epcm::managers::{AllocationPolicy, Machine, ManagerMode, MarketConfig, MemoryMarket};
use epcm::sim::clock::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut market = MemoryMarket::new(MarketConfig {
        income_per_sec: 0.0, // accounts get explicit incomes below
        charge_per_mb_sec: 10.0,
        free_when_uncontended: false,
        ..MarketConfig::default()
    });
    market.open_account(ManagerId(1), Some(10.0)); // poor batch job
    market.open_account(ManagerId(2), Some(20.0)); // rich batch job

    // 3 MB machine: the two jobs want ~5 MB together, so the market must
    // arbitrate.
    let mut machine = Machine::builder(768)
        .allocation(AllocationPolicy::Market {
            market,
            horizon: Micros::from_secs(2),
        })
        .build();
    let poor = machine.register_manager(Box::new(GenericManager::new(
        PlainSpec,
        ManagerMode::FaultingProcess,
    )));
    let rich = machine.register_manager(Box::new(GenericManager::new(
        PlainSpec,
        ManagerMode::FaultingProcess,
    )));
    let seg_poor = machine.create_segment_with(SegmentKind::Anonymous, 600, poor, UserId(1))?;
    let seg_rich = machine.create_segment_with(SegmentKind::Anonymous, 600, rich, UserId(2))?;

    println!("incomes: poor=10 drams/s, rich=20 drams/s; price 10 drams per MB-second");
    println!("memory: 768 frames (3 MB); both jobs want 600 frames\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "t (s)", "poor frames", "rich frames", "poor drams", "rich drams"
    );

    let (mut next_poor, mut next_rich) = (0u64, 0u64);
    for second in 1..=120u64 {
        // Each job greedily grows its footprint as the market allows.
        for _ in 0..16 {
            if machine
                .touch(seg_poor, next_poor % 600, AccessKind::Write)
                .is_ok()
            {
                next_poor += 1;
            }
            if machine
                .touch(seg_rich, next_rich % 600, AccessKind::Write)
                .is_ok()
            {
                next_rich += 1;
            }
        }
        machine.kernel_mut().charge(Micros::from_secs(1));
        machine.tick()?; // billing + forced reclamation
        if second % 15 == 0 {
            let balances = machine
                .spcm()
                .market()
                .map(|mk| {
                    (
                        mk.balance(ManagerId(1)).unwrap_or(0.0),
                        mk.balance(ManagerId(2)).unwrap_or(0.0),
                    )
                })
                .unwrap_or((0.0, 0.0));
            println!(
                "{:>5} {:>12} {:>12} {:>12.1} {:>12.1}",
                second,
                machine.spcm().granted_to(poor),
                machine.spcm().granted_to(rich),
                balances.0,
                balances.1,
            );
        }
    }
    let (a, b) = (
        machine.spcm().granted_to(poor),
        machine.spcm().granted_to(rich),
    );
    println!(
        "\nsteady state: {a} vs {b} frames — ratio {:.2}, tracking the 2.0 income ratio.",
        b as f64 / a.max(1) as f64
    );
    let (req, defer, refuse) = machine.spcm().decision_counts();
    println!("SPCM decisions: {req} requests, {defer} deferred, {refuse} refused.");
    Ok(())
}
