//! Figure 2, executable: the five-step page-fault handling sequence with
//! external page-cache management.
//!
//! ```text
//! cargo run --example fault_walkthrough
//! ```

use epcm::core::{AccessKind, SegmentKind};
use epcm::managers::{Machine, TraceStep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::with_default_manager(1024);
    let seg = machine.create_segment(SegmentKind::Anonymous, 16)?;
    // Warm the manager's free-page segment so the traced fault is the
    // steady-state minimal fault (the first-ever fault also includes the
    // manager's initial SPCM frame request).
    machine.touch(seg, 0, AccessKind::Write)?;

    println!("Figure 2: Page Fault Handling with External Page-Cache Management\n");
    machine.enable_trace();
    machine.touch(seg, 3, AccessKind::Write)?;

    for step in machine.take_trace() {
        match step {
            TraceStep::FaultRaised(fault) => {
                println!(
                    "(1) application references {} {} and traps;",
                    fault.segment, fault.page
                );
                println!(
                    "    the kernel classifies it [{}] and forwards it to {}",
                    fault.kind, fault.manager
                );
            }
            TraceStep::Dispatched { manager, mode } => {
                println!("(2) {manager} (running as {mode}) receives the fault,");
                println!("    allocates a page frame from its free-page segment,");
                println!("(3) fills it (here: a minimal fault, no backing-store data needed),");
                println!("(4) and invokes MigratePages to move the frame to the faulting address;");
            }
            TraceStep::Resumed { elapsed } => {
                println!("(5) the application resumes. Total fault time: {elapsed}.");
            }
        }
    }

    // The same walk for a fault that does need backing-store data:
    println!(
        "\n--- and again for a cached-file fault (steps 2-3 fetch from the file server) ---\n"
    );
    machine.store_mut().create_with("input", vec![7u8; 8192]);
    let file = machine.open_file("input")?;
    machine.enable_trace();
    let mut buf = [0u8; 16];
    machine.uio_read(file, 4096, &mut buf)?;
    for step in machine.take_trace() {
        match step {
            TraceStep::FaultRaised(fault) => {
                println!(
                    "(1) UIO read faults on {} {} -> {}",
                    fault.segment, fault.page, fault.manager
                );
            }
            TraceStep::Dispatched { manager, .. } => {
                println!("(2) {manager} allocates a frame and requests the page data from the file server,");
                println!("(3) the server replies; the manager copies the data into the frame,");
                println!("(4) MigratePages installs it;");
            }
            TraceStep::Resumed { elapsed } => {
                println!("(5) the read resumes and completes. Fault time: {elapsed}.");
            }
        }
    }
    assert_eq!(buf, [7u8; 16]);
    Ok(())
}
