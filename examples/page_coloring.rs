//! Application-specific page coloring (§1, §2.2): the manager requests
//! frames from the SPCM by cache color so consecutive virtual pages never
//! collide in a direct-mapped physically-indexed cache — something only
//! possible because the kernel exports physical frame addresses.
//!
//! ```text
//! cargo run --example page_coloring
//! ```

use epcm::core::{AccessKind, SegmentKind};
use epcm::managers::coloring::{audit_colors, coloring_manager};
use epcm::managers::Machine;
use epcm::sim::rng::Rng;

const COLORS: u32 = 8; // e.g. a 32 KB direct-mapped cache of 4 KB pages

/// Real programs touch their address space in data-dependent order, not
/// page 0,1,2,...; a shuffled first-touch order is what defeats
/// accidental coloring in a first-fit allocator.
fn touch_order() -> Vec<u64> {
    let mut pages: Vec<u64> = (0..96).collect();
    Rng::seed_from(42).shuffle(&mut pages);
    pages
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Colored allocation.
    let mut colored = Machine::new(1024);
    let id = colored.register_manager(Box::new(coloring_manager(COLORS)));
    colored.set_default_manager(id);
    let seg_c = colored.create_segment(SegmentKind::Anonymous, 256)?;
    for p in touch_order() {
        colored.touch(seg_c, p, AccessKind::Write)?;
    }
    let audit_c = audit_colors(colored.kernel(), seg_c, COLORS)?;

    // Conventional first-fit allocation, same access pattern.
    let mut plain = Machine::with_default_manager(1024);
    let seg_p = plain.create_segment(SegmentKind::Anonymous, 256)?;
    for p in touch_order() {
        plain.touch(seg_p, p, AccessKind::Write)?;
    }
    let audit_p = audit_colors(plain.kernel(), seg_p, COLORS)?;

    println!("96 virtual pages first-touched in program order, {COLORS}-color cache\n");
    println!(
        "{:<26} {:>10} {:>12} {:>12}",
        "allocator", "matched", "mismatched", "overcommit"
    );
    println!(
        "{:<26} {:>10} {:>12} {:>12}",
        "color-constrained (SPCM)",
        audit_c.matched,
        audit_c.mismatched,
        audit_c.max_overcommit()
    );
    println!(
        "{:<26} {:>10} {:>12} {:>12}",
        "first-fit (default)",
        audit_p.matched,
        audit_p.mismatched,
        audit_p.max_overcommit()
    );

    println!("\nframes per color (colored allocation):");
    for (color, count) in &audit_c.per_color {
        println!(
            "  color {color}: {count:>3} {}",
            "#".repeat(*count as usize)
        );
    }
    println!(
        "\nEvery virtual page got a frame of its own color: zero conflict overcommit, \
         so a sweep over this range never self-evicts in the cache."
    );
    Ok(())
}
