//! The scientific-computation scenario from the paper's introduction: a
//! large-scale simulation scans hundreds of megabytes per timestep, with
//! "ample time to overlap prefetching and writeback if the data does not
//! fit entirely in memory." An application-directed prefetching manager
//! hides the disk latency behind the computation.
//!
//! ```text
//! cargo run --release --example scientific_prefetch
//! ```

use epcm::core::AccessKind;
use epcm::managers::prefetch::{prefetch_manager, PrefetchManager};
use epcm::managers::Machine;
use epcm::sim::clock::Micros;
use epcm::sim::disk::Device;

/// One simulated timestep: scan `pages` pages of particle data with
/// `compute` time per page. Returns elapsed virtual time.
fn timestep(
    machine: &mut Machine,
    seg: epcm::core::SegmentId,
    pages: u64,
    compute: Micros,
) -> Result<Micros, Box<dyn std::error::Error>> {
    let t0 = machine.now();
    for p in 0..pages {
        machine.touch(seg, p, AccessKind::Read)?;
        machine.kernel_mut().charge(compute);
    }
    Ok(machine.now().duration_since(t0))
}

fn run_with_depth(depth: u64) -> Result<(Micros, String), Box<dyn std::error::Error>> {
    // 512-page (2 MB) particle file on a 1992 disk; per-page compute of
    // 3 ms — more than a sequential block transfer (1.5 ms), so prefetch
    // can hide the disk entirely.
    let mut machine = Machine::builder(2048).device(Device::disk_1992()).build();
    let id = machine.register_manager(Box::new(prefetch_manager(depth)));
    machine.set_default_manager(id);
    machine.store_mut().create("particles", 512 * 4096);
    let seg = machine.open_file("particles")?;
    let elapsed = timestep(&mut machine, seg, 512, Micros::from_millis(3))?;
    let stats = machine
        .manager(id)
        .expect("registered")
        .as_any()
        .downcast_ref::<PrefetchManager>()
        .expect("prefetch manager")
        .spec()
        .stats();
    let detail = format!(
        "misses={:<3} partial={:<3} full hits={:<3} saved={}",
        stats.misses, stats.partial_hits, stats.full_hits, stats.saved
    );
    Ok((elapsed, detail))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("2 MB particle scan, 3 ms compute per page, 1992 disk\n");
    println!("{:<14} {:>12}   detail", "read-ahead", "elapsed");
    let mut baseline = None;
    for depth in [0u64, 1, 2, 4, 8, 16] {
        let (elapsed, detail) = run_with_depth(depth)?;
        let base = *baseline.get_or_insert(elapsed);
        println!(
            "depth {depth:<8} {:>12}   {detail}  ({:.1}x)",
            elapsed.to_string(),
            base.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    println!("\nWith enough read-ahead the scan runs at compute speed: the disk is fully hidden.");
    Ok(())
}
