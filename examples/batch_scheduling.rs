//! Batch-program scheduling under the memory market (§2.4): a job saves
//! drams while swapped out, runs a timeslice once it can afford its
//! working set, then pages out and returns to the quiescent state.
//!
//! ```text
//! cargo run --release --example batch_scheduling
//! ```

use epcm::core::{ManagerId, SegmentKind, UserId};
use epcm::managers::batch::{BatchJob, BatchState};
use epcm::managers::generic::{GenericManager, PlainSpec};
use epcm::managers::{
    AllocationPolicy, Machine, ManagerMode, MarketConfig, MemoryMarket, SystemPageCacheManager,
};
use epcm::sim::clock::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut market = MemoryMarket::new(MarketConfig {
        income_per_sec: 0.0,
        charge_per_mb_sec: 10.0,
        free_when_uncontended: false,
        ..MarketConfig::default()
    });
    market.open_account(ManagerId(1), Some(7.0));
    market.open_account(ManagerId(2), Some(9.0));

    let mut machine = Machine::builder(384).build();
    let mut ids = Vec::new();
    let mut segs = Vec::new();
    for user in 1..=2u32 {
        let id = machine.register_manager(Box::new(GenericManager::new(
            PlainSpec,
            ManagerMode::FaultingProcess,
        )));
        ids.push(id);
        segs.push(machine.create_segment_with(SegmentKind::Anonymous, 512, id, UserId(user))?);
    }
    *machine.spcm_mut() = SystemPageCacheManager::new(
        AllocationPolicy::Market {
            market,
            horizon: Micros::from_secs(2),
        },
        0,
    );

    let mut jobs: Vec<BatchJob> = ids
        .iter()
        .zip(&segs)
        .map(|(&id, &seg)| BatchJob::new(id, seg, 300, Micros::from_secs(4)))
        .collect();

    println!("two batch jobs, each needing 300 of 384 frames; incomes 7 and 9 drams/s\n");
    println!("{:>5} {:>12} {:>12}", "t (s)", "job A", "job B");
    for second in 1..=180u64 {
        machine.kernel_mut().charge(Micros::from_secs(1));
        machine.tick()?;
        for job in &mut jobs {
            job.poll(&mut machine)?;
        }
        if second % 12 == 0 {
            let label = |s: BatchState| match s {
                BatchState::Saving => "saving",
                BatchState::Running { .. } => "RUNNING",
            };
            println!(
                "{second:>5} {:>12} {:>12}",
                label(jobs[0].state()),
                label(jobs[1].state())
            );
        }
    }
    println!();
    for (name, job) in ["A", "B"].iter().zip(&jobs) {
        let s = job.stats();
        println!(
            "job {name}: {} timeslices, {} swap-outs, {} resident",
            s.timeslices, s.swap_outs, s.resident_time
        );
    }
    println!("\nEach job computes while it can pay, then pages itself out and saves —");
    println!("the paper's batch scheduling, with no kernel policy involved at all.");
    Ok(())
}
