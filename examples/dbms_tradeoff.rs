//! The Table 4 experiment: the index space-time tradeoff under four
//! memory configurations, plus a demonstration that the discarded index
//! really is regenerable bit-for-bit from the relation data.
//!
//! ```text
//! cargo run --release --example dbms_tradeoff
//! ```

use epcm::dbms::config::{DbmsConfig, IndexStrategy};
use epcm::dbms::engine::run;
use epcm::dbms::index::HashIndex;
use epcm::managers::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Running the four configurations of Section 3.3 (reduced scale)...\n");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "Configuration", "avg (ms)", "worst (ms)", "index restores"
    );
    for strategy in IndexStrategy::all() {
        let report = run(&DbmsConfig::quick(strategy));
        println!(
            "{:<22} {:>12.0} {:>14.0} {:>14}",
            strategy.label(),
            report.average_ms(),
            report.worst_ms(),
            report.index_restorations
        );
    }

    println!("\n--- and the regeneration mechanism itself, on real pages ---\n");
    let mut machine = Machine::with_default_manager(4096);
    let records: Vec<(u32, u32)> = (0..3000u32)
        .map(|i| (i.wrapping_mul(2_654_435_761), i))
        .collect();
    let mut index = HashIndex::build(&mut machine, &records, 128)?;
    println!(
        "built a {}-page hash index over {} records in {}",
        index.pages(),
        index.entries(),
        index.segment()
    );
    let probe_key = records[1234].0;
    println!(
        "probe({probe_key:#x}) = {:?}",
        index.probe(&mut machine, probe_key)?
    );

    let released = index.discard(&mut machine)?;
    println!(
        "\nmemory pressure: discarded the index, releasing {released} frames with NO writeback I/O \
         (store writes so far: {})",
        machine.store().write_count()
    );

    index.regenerate(&mut machine, &records)?;
    println!(
        "regenerated in memory: probe({probe_key:#x}) = {:?} (same answer, zero disk reads)",
        index.probe(&mut machine, probe_key)?
    );
    Ok(())
}
